// Command pitexquery answers a single PITEX query: the k most influential
// tags for a user, either on a generated dataset or on files produced by
// pitexgen.
//
// Usage:
//
//	pitexquery -dataset lastfm -user 42 -k 3 -strategy indexest+
//	pitexquery -network g.network -model g.model -user 42 -k 3
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"pitex"
)

func main() {
	var (
		dataset  = flag.String("dataset", "", "generate this dataset (lastfm, diggs, dblp, twitter)")
		network  = flag.String("network", "", "network file (alternative to -dataset)")
		model    = flag.String("model", "", "tag model file (required with -network)")
		seed     = flag.Uint64("seed", 1, "generation / sampling seed")
		scale    = flag.Float64("scale", 1.0, "dataset scale factor (with -dataset)")
		user     = flag.Int("user", 0, "query user ID")
		k        = flag.Int("k", 3, "number of tags to select")
		strategy = flag.String("strategy", "lazy", "lazy, mc, rr, tim, indexest, indexest+, delaymat")
		epsilon  = flag.Float64("epsilon", 0.7, "relative error bound")
		delta    = flag.Float64("delta", 1000, "failure probability control (1/delta)")
		maxSamp  = flag.Int64("max-samples", 5000, "per-estimation sample cap (0 = theoretical)")
		maxIdx   = flag.Int64("max-index-samples", 200000, "offline sample cap (0 = theoretical)")
		cheap    = flag.Bool("cheap-bounds", true, "use one-BFS upper bounds in best-effort exploration")
		top      = flag.Int("top", 1, "return the m best tag sets")
		prefix   = flag.String("prefix", "", "comma-separated tag IDs the answer must contain")
		audience = flag.Int("audience", 0, "also print the top-N most likely influenced users")
	)
	flag.Parse()
	if err := run(*dataset, *network, *model, *seed, *scale, *user, *k, *strategy, *epsilon, *delta, *maxSamp, *maxIdx, *cheap, *top, *prefix, *audience); err != nil {
		fmt.Fprintln(os.Stderr, "pitexquery:", err)
		os.Exit(1)
	}
}

func run(dataset, networkPath, modelPath string, seed uint64, scale float64, user, k int, strategyName string, epsilon, delta float64, maxSamp, maxIdx int64, cheap bool, top int, prefixArg string, audienceN int) error {
	strategy, err := pitex.ParseStrategy(strategyName)
	if err != nil {
		return err
	}
	var prefix []int
	if prefixArg != "" {
		for _, f := range strings.Split(prefixArg, ",") {
			w, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				return fmt.Errorf("bad -prefix entry %q", f)
			}
			prefix = append(prefix, w)
		}
	}

	var net *pitex.Network
	var model *pitex.TagModel
	switch {
	case dataset != "":
		spec, err := pitex.BaseDatasetSpec(dataset)
		if err != nil {
			return err
		}
		if scale != 1.0 {
			spec = spec.Scaled(scale)
		}
		net, model, err = pitex.GenerateDatasetSpec(spec, seed)
		if err != nil {
			return err
		}
	case networkPath != "" && modelPath != "":
		nf, err := os.Open(networkPath)
		if err != nil {
			return err
		}
		defer nf.Close()
		net, err = pitex.ReadNetwork(nf)
		if err != nil {
			return err
		}
		mf, err := os.Open(modelPath)
		if err != nil {
			return err
		}
		defer mf.Close()
		model, err = pitex.ReadTagModel(mf)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("need either -dataset or both -network and -model")
	}

	maxK := k
	if maxK < 10 {
		maxK = 10
	}
	en, err := pitex.NewEngine(net, model, pitex.Options{
		Strategy:        strategy,
		Epsilon:         epsilon,
		Delta:           delta,
		MaxK:            maxK,
		Seed:            seed,
		MaxSamples:      maxSamp,
		MaxIndexSamples: maxIdx,
		CheapBounds:     cheap,
	})
	if err != nil {
		return err
	}
	if en.IndexBuildTime > 0 {
		fmt.Printf("index built in %v (%.2f MB)\n", en.IndexBuildTime,
			float64(en.IndexMemoryBytes())/(1<<20))
	}

	var res pitex.Result
	switch {
	case len(prefix) > 0:
		res, err = en.QueryWithPrefix(user, prefix, k)
	case top > 1:
		res, err = en.QueryTop(user, k, top)
	default:
		res, err = en.Query(user, k)
	}
	if err != nil {
		return err
	}
	fmt.Printf("user %d, k=%d, strategy %s\n", user, k, strategy)
	fmt.Printf("selling points: %s\n", strings.Join(res.TagNames, ", "))
	fmt.Printf("tag IDs:        %v\n", res.Tags)
	fmt.Printf("est. influence: %.3f users\n", res.Influence)
	fmt.Printf("query time:     %v\n", res.Elapsed)
	fmt.Printf("work: %d full sets estimated, %d bound estimates, %d pruned unsupported, %d pruned by bound\n",
		res.FullSetsEstimated, res.PartialBoundsEstimated, res.PrunedUnsupported, res.PrunedByBound)
	for i, alt := range res.Alternatives {
		if i == 0 {
			continue // repeats the headline answer
		}
		fmt.Printf("  #%d: %s (influence %.3f)\n", i+1, strings.Join(alt.TagNames, ", "), alt.Influence)
	}
	if audienceN > 0 {
		aud, err := en.Audience(user, res.Tags, audienceN, 5000)
		if err != nil {
			return err
		}
		fmt.Println("most likely influenced users:")
		for _, a := range aud {
			fmt.Printf("  user %d (p=%.3f)\n", a.User, a.Probability)
		}
	}
	return nil
}
