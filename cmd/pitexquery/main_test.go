package main

import (
	"os"
	"path/filepath"
	"testing"

	"pitex"
)

func TestParseStrategy(t *testing.T) {
	cases := map[string]pitex.Strategy{
		"lazy": pitex.StrategyLazy, "LAZY": pitex.StrategyLazy,
		"mc": pitex.StrategyMC, "rr": pitex.StrategyRR, "tim": pitex.StrategyTIM,
		"indexest": pitex.StrategyIndex, "index": pitex.StrategyIndex,
		"indexest+": pitex.StrategyIndexPruned, "index+": pitex.StrategyIndexPruned,
		"delaymat": pitex.StrategyDelay, "delay": pitex.StrategyDelay,
	}
	for in, want := range cases {
		got, err := pitex.ParseStrategy(in)
		if err != nil || got != want {
			t.Errorf("ParseStrategy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := pitex.ParseStrategy("bogus"); err == nil {
		t.Fatal("bogus strategy accepted")
	}
}

func TestRunOnGeneratedDataset(t *testing.T) {
	err := run("lastfm", "", "", 1, 0.02, 0, 2, "indexest+", 0.7, 1000, 500, 4000, true, 2, "", 3)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunOnFiles(t *testing.T) {
	dir := t.TempDir()
	// Produce files through the public API.
	spec, err := pitex.BaseDatasetSpec("lastfm")
	if err != nil {
		t.Fatal(err)
	}
	net, model, err := pitex.GenerateDatasetSpec(spec.Scaled(0.02), 1)
	if err != nil {
		t.Fatal(err)
	}
	np := filepath.Join(dir, "g.network")
	mp := filepath.Join(dir, "g.model")
	nf, err := os.Create(np)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Write(nf); err != nil {
		t.Fatal(err)
	}
	nf.Close()
	mf, err := os.Create(mp)
	if err != nil {
		t.Fatal(err)
	}
	if err := model.Write(mf); err != nil {
		t.Fatal(err)
	}
	mf.Close()

	if err := run("", np, mp, 1, 1, 0, 2, "lazy", 0.7, 1000, 500, 0, true, 1, "0", 0); err != nil {
		t.Fatalf("run on files: %v", err)
	}
}

func TestRunBadPrefix(t *testing.T) {
	if err := run("lastfm", "", "", 1, 0.02, 0, 2, "lazy", 0.7, 1000, 500, 0, true, 1, "x,y", 0); err == nil {
		t.Fatal("bad prefix accepted")
	}
}

func TestRunValidation(t *testing.T) {
	if err := run("", "", "", 1, 1, 0, 2, "lazy", 0.7, 1000, 0, 0, true, 1, "", 0); err == nil {
		t.Fatal("missing inputs accepted")
	}
	if err := run("lastfm", "", "", 1, 0.02, 0, 2, "bogus", 0.7, 1000, 0, 0, true, 1, "", 0); err == nil {
		t.Fatal("bogus strategy accepted")
	}
	if err := run("", "/does/not/exist", "/nope", 1, 1, 0, 2, "lazy", 0.7, 1000, 0, 0, true, 1, "", 0); err == nil {
		t.Fatal("missing files accepted")
	}
}
