package main

import (
	"bytes"
	"strings"
	"testing"
)

// testdataModule is the seeded-violation module the analyzer suite's own
// tests annotate; running the full driver over it proves the CI gate can
// fail end to end.
const testdataModule = "../../internal/analysis/testdata/src"

func TestSeededViolationsFailTheGate(t *testing.T) {
	var out, errw bytes.Buffer
	code := run([]string{"-dir", testdataModule, "./..."}, &out, &errw)
	if code != 1 {
		t.Fatalf("exit = %d over seeded violations, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errw.String())
	}
	for _, needle := range []string{
		": detrand: time.Now",
		": rngstream: rng.New with constant seed",
		": ctxflow: context.Background inside a function",
		": obsvreg: metric name \"bad-name\"",
		": errflow: Close error silently dropped",
		": pitexlint: allow comment must carry a reason",
	} {
		if !strings.Contains(out.String(), needle) {
			t.Errorf("driver output missing %q", needle)
		}
	}
	if !strings.Contains(errw.String(), "finding(s)") {
		t.Errorf("stderr %q lacks the finding count", errw.String())
	}
}

func TestOnlyRestrictsSuite(t *testing.T) {
	var out, errw bytes.Buffer
	code := run([]string{"-dir", testdataModule, "-only", "errflow", "./..."}, &out, &errw)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if strings.Contains(out.String(), ": detrand: ") {
		t.Error("-only errflow still ran detrand")
	}
	if !strings.Contains(out.String(), ": errflow: ") {
		t.Error("-only errflow produced no errflow findings")
	}
}

func TestOnlyCleanAnalyzerPasses(t *testing.T) {
	// The ctxflow seeds live under serve/; the errflow testdata package
	// is ctxflow-clean, so restricting both suite and pattern passes.
	var out, errw bytes.Buffer
	if code := run([]string{"-dir", testdataModule, "-only", "ctxflow", "./errflow"}, &out, &errw); code != 0 {
		t.Fatalf("exit = %d, want 0\n%s%s", code, out.String(), errw.String())
	}
}

func TestListFlag(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-list"}, &out, &errw); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, name := range []string{"detrand", "rngstream", "ctxflow", "obsvreg", "errflow"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %q", name)
		}
	}
}

func TestUsageErrors(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-only", "nosuch", "./..."}, &out, &errw); code != 2 {
		t.Errorf("unknown analyzer: exit = %d, want 2", code)
	}
	if code := run([]string{"-badflag"}, &out, &errw); code != 2 {
		t.Errorf("bad flag: exit = %d, want 2", code)
	}
	if code := run([]string{"-dir", t.TempDir(), "./..."}, &out, &errw); code != 2 {
		t.Errorf("load failure: exit = %d, want 2", code)
	}
}

// TestRepoIsClean runs the full suite over the repository itself — the
// same gate CI enforces: zero unsuppressed diagnostics.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	var out, errw bytes.Buffer
	if code := run([]string{"-dir", "../..", "./..."}, &out, &errw); code != 0 {
		t.Fatalf("pitexlint is not clean on the tree (exit %d):\n%s", code, out.String())
	}
}
