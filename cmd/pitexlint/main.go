// Command pitexlint runs the repository's static-analysis suite
// (internal/analysis): five analyzers that machine-check the
// determinism, RNG, context, metrics and error-flow invariants the
// serving guarantees rest on.
//
//	pitexlint ./...                  # lint the whole module
//	pitexlint -only detrand,ctxflow ./serve/... ./distrib/...
//	pitexlint -list                  # show the suite
//
// Diagnostics print one per line as file:line:col: analyzer: message;
// the exit status is 1 when anything is found, 2 on a usage or load
// error. A finding that is intentional is suppressed in place with
//
//	//pitexlint:allow <analyzer>[,<analyzer>...] -- reason
//
// on the offending line or the line above it; the reason is mandatory.
// CI runs the suite over ./... and separately asserts that the seeded
// violations under internal/analysis/testdata still fail, proving the
// gate works.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"pitex/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable driver body: parse flags, load packages, apply the
// (possibly restricted) suite, print findings.
func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("pitexlint", flag.ContinueOnError)
	fs.SetOutput(errw)
	dir := fs.String("dir", ".", "directory whose module the package patterns resolve in")
	only := fs.String("only", "", "comma-separated subset of analyzers to run")
	list := fs.Bool("list", false, "list the analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	suite := analysis.All()
	if *list {
		for _, a := range suite {
			fmt.Fprintf(out, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range suite {
			byName[a.Name] = a
		}
		var picked []*analysis.Analyzer
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(errw, "pitexlint: unknown analyzer %q (see -list)\n", name)
				return 2
			}
			picked = append(picked, a)
		}
		suite = picked
	}
	pkgs, err := analysis.Load(*dir, fs.Args()...)
	if err != nil {
		fmt.Fprintln(errw, err)
		return 2
	}
	diags := analysis.RunAnalyzers(pkgs, suite)
	for _, d := range diags {
		fmt.Fprintln(out, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(errw, "pitexlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
