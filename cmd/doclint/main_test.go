package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, root, rel, content string) {
	t.Helper()
	path := filepath.Join(root, rel)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestRunFlagsGoViolations(t *testing.T) {
	root := t.TempDir()
	write(t, root, "bad/bad.go", `package bad

func Exported() {}

type Thing struct{}

const Answer = 42

func (Thing) Method() {}

type hidden struct{}

// internal receivers may stay quiet regardless of method case.
func (hidden) Loud() {}

type gen[T any] struct{}

func (g *gen[T]) Quiet() {}

// Box is a documented generic type.
type Box[K comparable, V any] struct{}

func (b Box[K, V]) Get() {}
`)
	write(t, root, "good/good.go", `// Package good is fully documented.
package good

// Exported is documented.
func Exported() {}

const (
	// A is documented above.
	A = 1
	B = 2 // B is documented inline.
)
`)
	write(t, root, "testdata/skipme.go", `package skipme
func AlsoExported() {}
`)
	var out strings.Builder
	n := run(root, nil, &out)
	got := out.String()
	for _, want := range []string{
		"exported func Exported has no doc comment",
		"exported type Thing has no doc comment",
		"exported const Answer has no doc comment",
		"exported func Method has no doc comment",
		"exported func Get has no doc comment",
		"package has no package comment",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "Loud") || strings.Contains(got, "Quiet") ||
		strings.Contains(got, "skipme") || strings.Contains(got, "good.go") {
		t.Errorf("flagged something it should skip:\n%s", got)
	}
	if n != 6 {
		t.Errorf("run returned %d violations, want 6:\n%s", n, got)
	}
}

func TestRunFlagsMarkdownViolations(t *testing.T) {
	root := t.TempDir()
	write(t, root, "README.md", `# Top

See [docs](DESIGN.md), [a section](DESIGN.md#the-good-part),
[missing](GONE.md), [bad anchor](DESIGN.md#nope),
[here](#top), [external](https://example.com/x#y).
`)
	write(t, root, "DESIGN.md", `# Design

## The good part

Words.
`)
	var out strings.Builder
	n := run(root, []string{"README.md"}, &out)
	got := out.String()
	if !strings.Contains(got, "GONE.md does not exist") {
		t.Errorf("missing-file link not flagged:\n%s", got)
	}
	if !strings.Contains(got, "anchor #nope") {
		t.Errorf("bad anchor not flagged:\n%s", got)
	}
	if n != 2 {
		t.Errorf("run returned %d violations, want 2:\n%s", n, got)
	}
}

func TestSlugify(t *testing.T) {
	for in, want := range map[string]string{
		"The estimation hot path":                   "the-estimation-hot-path",
		"Generation lifecycle: update, hot-swap":    "generation-lifecycle-update-hot-swap",
		"Life of a query":                           "life-of-a-query",
		"snake_case_stays":                          "snake_case_stays",
		"Números y MAYÚSCULAS":                      "números-y-mayúsculas",
		"punctuation!? (mostly) [vanishes] `quite`": "punctuation-mostly-vanishes-quite",
	} {
		if got := slugify(in); got != want {
			t.Errorf("slugify(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestRepositoryIsClean(t *testing.T) {
	var out strings.Builder
	if n := run("../..", []string{"README.md", "ARCHITECTURE.md"}, &out); n != 0 {
		t.Errorf("repository has %d doc violations:\n%s", n, out.String())
	}
}
