// Command doclint fails CI when the repository's documentation decays:
//
//	doclint -root . README.md ARCHITECTURE.md
//
// Two families of checks, both fast enough to run on every push:
//
//   - Go doc comments. Every exported function, method (on an exported
//     receiver), type, constant and variable outside _test.go files must
//     carry a doc comment, and every package must have a package comment
//     in at least one of its files. This is the subset of staticcheck's
//     ST1000/ST1020/ST1021 that go vet does not cover, without pulling
//     the full stylecheck set into the build.
//
//   - Markdown links. Every relative link in the markdown files given as
//     arguments must resolve to an existing file, and a fragment into a
//     markdown file (README.md#benchmarking) must match one of that
//     file's heading anchors under GitHub's slug rules. External links
//     (http, https, mailto) are not fetched.
//
// Violations print one per line as path:line: message; the exit status
// is 1 when anything is found. Directories named .git, .github, testdata
// and bench-artifacts are skipped.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"unicode"
)

func main() {
	root := flag.String("root", ".", "module root to lint")
	flag.Parse()
	n := run(*root, flag.Args(), os.Stdout)
	if n > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d violation(s)\n", n)
		os.Exit(1)
	}
}

// run performs every check under root and returns the violation count.
// mdFiles are markdown paths relative to root whose links are verified.
func run(root string, mdFiles []string, out io.Writer) int {
	viol := lintGo(root)
	for _, md := range mdFiles {
		viol = append(viol, lintMarkdown(root, md)...)
	}
	sort.Strings(viol)
	for _, v := range viol {
		fmt.Fprintln(out, v)
	}
	return len(viol)
}

var skipDirs = map[string]bool{
	".git": true, ".github": true, "testdata": true, "bench-artifacts": true,
}

// lintGo walks every non-test .go file under root and reports exported
// identifiers without doc comments plus packages without a package
// comment.
func lintGo(root string) []string {
	fset := token.NewFileSet()
	pkgDoc := map[string]bool{} // dir -> any file carries a package comment
	var viol []string
	filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if skipDirs[d.Name()] {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			viol = append(viol, fmt.Sprintf("%s: parse: %v", path, err))
			return nil
		}
		dir := filepath.Dir(path)
		if f.Doc != nil {
			pkgDoc[dir] = true
		} else if _, seen := pkgDoc[dir]; !seen {
			pkgDoc[dir] = false
		}
		viol = append(viol, lintDecls(fset, f)...)
		return nil
	})
	for dir, ok := range pkgDoc {
		if !ok {
			viol = append(viol, dir+": package has no package comment")
		}
	}
	return viol
}

// lintDecls reports the undocumented exported declarations of one file.
func lintDecls(fset *token.FileSet, f *ast.File) []string {
	var viol []string
	at := func(pos token.Pos) string {
		p := fset.Position(pos)
		return fmt.Sprintf("%s:%d", p.Filename, p.Line)
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil || !exportedRecv(d) {
				continue
			}
			viol = append(viol, fmt.Sprintf("%s: exported func %s has no doc comment", at(d.Pos()), d.Name.Name))
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch sp := spec.(type) {
				case *ast.TypeSpec:
					if sp.Name.IsExported() && sp.Doc == nil && d.Doc == nil {
						viol = append(viol, fmt.Sprintf("%s: exported type %s has no doc comment", at(sp.Pos()), sp.Name.Name))
					}
				case *ast.ValueSpec:
					for _, n := range sp.Names {
						if n.IsExported() && sp.Doc == nil && d.Doc == nil && sp.Comment == nil {
							viol = append(viol, fmt.Sprintf("%s: exported %s %s has no doc comment", at(sp.Pos()), d.Tok, n.Name))
						}
					}
				}
			}
		}
	}
	return viol
}

// exportedRecv reports whether a function is free-standing or its
// receiver type is exported — methods on unexported types are internal
// API regardless of the method name's case.
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	if se, ok := t.(*ast.StarExpr); ok {
		t = se.X
	}
	switch t := t.(type) {
	case *ast.Ident:
		return t.IsExported()
	case *ast.IndexExpr: // generic receiver
		if id, ok := t.X.(*ast.Ident); ok {
			return id.IsExported()
		}
	case *ast.IndexListExpr:
		if id, ok := t.X.(*ast.Ident); ok {
			return id.IsExported()
		}
	}
	return true
}

var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// lintMarkdown verifies every relative link of one markdown file:
// the target file must exist, and a #fragment into a markdown file must
// match one of its heading slugs.
func lintMarkdown(root, md string) []string {
	path := filepath.Join(root, md)
	data, err := os.ReadFile(path)
	if err != nil {
		return []string{fmt.Sprintf("%s: %v", path, err)}
	}
	var viol []string
	for i, line := range strings.Split(string(data), "\n") {
		for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue
			}
			file, frag, _ := strings.Cut(target, "#")
			if file == "" { // same-document anchor
				file = md
			}
			resolved := filepath.Join(filepath.Dir(path), file)
			if _, err := os.Stat(resolved); err != nil {
				viol = append(viol, fmt.Sprintf("%s:%d: link target %s does not exist", path, i+1, target))
				continue
			}
			if frag != "" && strings.HasSuffix(file, ".md") && !hasAnchor(resolved, frag) {
				viol = append(viol, fmt.Sprintf("%s:%d: no heading matches anchor #%s in %s", path, i+1, frag, file))
			}
		}
	}
	return viol
}

// hasAnchor reports whether a markdown file contains a heading whose
// GitHub slug equals frag.
func hasAnchor(path, frag string) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		return false
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "#") {
			continue
		}
		if slugify(strings.TrimLeft(line, "# ")) == frag {
			return true
		}
	}
	return false
}

// slugify reduces a heading to its GitHub anchor: lowercase, spaces to
// hyphens, everything but letters, digits, hyphens and underscores
// dropped.
func slugify(h string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(h) {
		switch {
		case r == ' ':
			b.WriteByte('-')
		case r == '-' || r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(r)
		}
	}
	return b.String()
}
