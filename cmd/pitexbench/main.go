// Command pitexbench regenerates the paper's tables and figures.
//
// Usage:
//
//	pitexbench -exp fig7                # one experiment, quick config
//	pitexbench -exp all -full           # everything at paper scale
//	pitexbench -exp fig9,fig10 -datasets lastfm,diggs -queries 5
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pitex/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment IDs, comma-separated (table2..4, fig6..14) or 'all'")
		full    = flag.Bool("full", false, "paper-scale configuration (default: quick)")
		scale   = flag.Float64("scale", 0, "override dataset scale factor")
		queries = flag.Int("queries", 0, "override queries per user group")
		seed    = flag.Uint64("seed", 0, "override seed")
		names   = flag.String("datasets", "", "comma-separated dataset subset")
		maxSamp = flag.Int64("max-samples", -1, "override per-estimation sample cap (0 = theoretical)")
		maxIdx  = flag.Int64("max-index-samples", -1, "override offline sample cap (0 = theoretical)")
		shards  = flag.Int("index-shards", 0, "hash-partition the offline index into this many shards (0/1 = monolithic)")
	)
	flag.Parse()
	if err := run(*exp, *full, *scale, *queries, *seed, *names, *maxSamp, *maxIdx, *shards); err != nil {
		fmt.Fprintln(os.Stderr, "pitexbench:", err)
		os.Exit(1)
	}
}

func run(exp string, full bool, scale float64, queries int, seed uint64, names string, maxSamp, maxIdx int64, shards int) error {
	cfg := experiments.Quick()
	if full {
		cfg = experiments.Full()
	}
	if scale > 0 {
		cfg.Scale = scale
	}
	if queries > 0 {
		cfg.QueriesPerGroup = queries
	}
	if seed > 0 {
		cfg.Seed = seed
	}
	if names != "" {
		cfg.Datasets = strings.Split(names, ",")
	}
	if maxSamp >= 0 {
		cfg.MaxSamples = maxSamp
	}
	if maxIdx >= 0 {
		cfg.MaxIndexSamples = maxIdx
	}
	if shards > 0 {
		cfg.IndexShards = shards
	}

	ids := experiments.ExperimentIDs()
	if exp != "all" {
		ids = strings.Split(exp, ",")
	}
	reg := experiments.Registry()
	for _, id := range ids {
		runner, ok := reg[strings.TrimSpace(id)]
		if !ok {
			return fmt.Errorf("unknown experiment %q (have %v)", id, experiments.ExperimentIDs())
		}
		rep, err := runner(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		rep.Print(os.Stdout)
		fmt.Println()
	}
	return nil
}
