package main

import "testing"

func TestRunSingleExperiment(t *testing.T) {
	if err := run("table2", false, 0.02, 1, 1, "lastfm", 200, 2000, 0); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunMultipleExperiments(t *testing.T) {
	if err := run("table2, table4", false, 0.02, 1, 1, "lastfm", 200, 2000, 0); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("fig99", false, 0.02, 1, 1, "lastfm", 200, 2000, 0); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunUnknownDataset(t *testing.T) {
	if err := run("table2", false, 0.02, 1, 1, "bogus", 200, 2000, 4); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}
