package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunWritesBothFiles(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "tiny")
	if err := run("lastfm", 1, 0.02, out); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, suffix := range []string{".network", ".model"} {
		st, err := os.Stat(out + suffix)
		if err != nil {
			t.Fatalf("missing %s: %v", suffix, err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s is empty", suffix)
		}
	}
}

func TestRunUnknownDataset(t *testing.T) {
	if err := run("bogus", 1, 1, filepath.Join(t.TempDir(), "x")); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestRunDefaultOutPrefix(t *testing.T) {
	dir := t.TempDir()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(wd); err != nil {
			t.Fatal(err)
		}
	}()
	if err := run("lastfm", 1, 0.02, ""); err != nil {
		t.Fatalf("run: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "lastfm.network")); err != nil {
		t.Fatalf("default prefix not used: %v", err)
	}
}
