// Command pitexgen generates one of the synthetic benchmark datasets and
// writes its network and tag model to disk in pitex's text formats.
//
// Usage:
//
//	pitexgen -dataset lastfm -seed 1 -scale 1.0 -out ./lastfm
//
// writes ./lastfm.network and ./lastfm.model.
package main

import (
	"flag"
	"fmt"
	"os"

	"pitex"
)

func main() {
	var (
		dataset = flag.String("dataset", "lastfm", "dataset name: lastfm, diggs, dblp, twitter")
		seed    = flag.Uint64("seed", 1, "generation seed")
		scale   = flag.Float64("scale", 1.0, "linear scale factor on |V| and |E|")
		out     = flag.String("out", "", "output path prefix (default: the dataset name)")
	)
	flag.Parse()
	if err := run(*dataset, *seed, *scale, *out); err != nil {
		fmt.Fprintln(os.Stderr, "pitexgen:", err)
		os.Exit(1)
	}
}

func run(dataset string, seed uint64, scale float64, out string) error {
	if out == "" {
		out = dataset
	}
	spec, err := pitex.BaseDatasetSpec(dataset)
	if err != nil {
		return err
	}
	if scale != 1.0 {
		spec = spec.Scaled(scale)
	}
	net, model, err := pitex.GenerateDatasetSpec(spec, seed)
	if err != nil {
		return err
	}

	nf, err := os.Create(out + ".network")
	if err != nil {
		return err
	}
	defer nf.Close()
	if err := net.Write(nf); err != nil {
		return err
	}
	mf, err := os.Create(out + ".model")
	if err != nil {
		return err
	}
	defer mf.Close()
	if err := model.Write(mf); err != nil {
		return err
	}

	fmt.Printf("wrote %s.network (%d users, %d edges, %d topics)\n",
		out, net.NumUsers(), net.NumEdges(), net.NumTopics())
	fmt.Printf("wrote %s.model (%d tags, density %.2f)\n",
		out, model.NumTags(), model.Density())
	return nil
}
