// Command pitexsweep runs a whole-population (or cohort) selling-points
// sweep: one PITEX query per user, reduced into a leaderboard of the most
// influential users and a tag-frequency histogram, written as
// deterministic JSON. With -checkpoint the sweep persists completed
// chunks and -resume picks an interrupted run back up, producing
// byte-identical output to an uninterrupted one.
//
// Usage:
//
//	pitexsweep -dataset lastfm -strategy indexest+ -k 3 -top 50 -out board.json
//	pitexsweep -dataset lastfm -checkpoint sweep.ckpt            # killed midway
//	pitexsweep -dataset lastfm -checkpoint sweep.ckpt -resume    # finishes it
//	pitexsweep -network g.network -model g.model -users 0-999 -out board.json
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"pitex"
	"pitex/analytics"
	"pitex/obsv"
)

func main() {
	var (
		dataset  = flag.String("dataset", "", "generate this dataset (lastfm, diggs, dblp, twitter)")
		network  = flag.String("network", "", "network file (alternative to -dataset)")
		model    = flag.String("model", "", "tag model file (required with -network)")
		seed     = flag.Uint64("seed", 1, "generation / sampling seed")
		scale    = flag.Float64("scale", 1.0, "dataset scale factor (with -dataset)")
		strategy = flag.String("strategy", "indexest+", "lazy, mc, rr, tim, indexest, indexest+, delaymat")
		epsilon  = flag.Float64("epsilon", 0.7, "relative error bound")
		delta    = flag.Float64("delta", 1000, "failure probability control (1/delta)")
		maxSamp  = flag.Int64("max-samples", 5000, "per-estimation sample cap (0 = theoretical)")
		maxIdx   = flag.Int64("max-index-samples", 200000, "offline sample cap (0 = theoretical)")
		idxShard = flag.Int("index-shards", 0, "hash-partition the offline index into this many shards")
		cheap    = flag.Bool("cheap-bounds", true, "use one-BFS upper bounds in best-effort exploration")

		k        = flag.Int("k", 3, "tag-set size per user query")
		topN     = flag.Int("top", 100, "leaderboard rows to keep")
		workers  = flag.Int("workers", 4, "concurrent engine clones")
		chunk    = flag.Int("chunk", analytics.DefaultChunkSize, "users per checkpointable chunk")
		usersArg = flag.String("users", "", "cohort: comma-separated user IDs and lo-hi ranges (default: everyone)")
		ckpt     = flag.String("checkpoint", "", "persist completed chunks to this file")
		resume   = flag.Bool("resume", false, "resume from -checkpoint if it exists")
		out      = flag.String("out", "", "write the leaderboard JSON here (default stdout)")
		progress = flag.Bool("progress", false, "log per-chunk progress to stderr")

		logFormat = flag.String("log-format", "text", "log output format: text or json")
	)
	flag.Parse()
	logger, err := obsv.NewLogger(os.Stderr, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pitexsweep:", err)
		os.Exit(1)
	}
	slog.SetDefault(logger)
	if err := run(logger, cfg{
		dataset: *dataset, network: *network, model: *model,
		seed: *seed, scale: *scale, strategy: *strategy,
		epsilon: *epsilon, delta: *delta, maxSamples: *maxSamp, maxIndexSamples: *maxIdx,
		indexShards: *idxShard, cheapBounds: *cheap,
		k: *k, topN: *topN, workers: *workers, chunk: *chunk,
		users: *usersArg, checkpoint: *ckpt, resume: *resume,
		out: *out, progress: *progress,
	}); err != nil {
		logger.Error("exiting", "err", err)
		os.Exit(1)
	}
}

type cfg struct {
	dataset, network, model     string
	seed                        uint64
	scale                       float64
	strategy                    string
	epsilon, delta              float64
	maxSamples, maxIndexSamples int64
	indexShards                 int
	cheapBounds                 bool

	k, topN, workers, chunk int
	users                   string
	checkpoint              string
	resume                  bool
	out                     string
	progress                bool
}

func run(logger *slog.Logger, c cfg) error {
	strategy, err := pitex.ParseStrategy(c.strategy)
	if err != nil {
		return err
	}
	cohort, err := parseUsers(c.users)
	if err != nil {
		return err
	}

	var net *pitex.Network
	var tagModel *pitex.TagModel
	switch {
	case c.dataset != "":
		spec, err := pitex.BaseDatasetSpec(c.dataset)
		if err != nil {
			return err
		}
		if c.scale != 1.0 {
			spec = spec.Scaled(c.scale)
		}
		net, tagModel, err = pitex.GenerateDatasetSpec(spec, c.seed)
		if err != nil {
			return err
		}
	case c.network != "" && c.model != "":
		nf, err := os.Open(c.network)
		if err != nil {
			return err
		}
		defer nf.Close()
		net, err = pitex.ReadNetwork(nf)
		if err != nil {
			return err
		}
		mf, err := os.Open(c.model)
		if err != nil {
			return err
		}
		defer mf.Close()
		tagModel, err = pitex.ReadTagModel(mf)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("need either -dataset or both -network and -model")
	}

	maxK := c.k
	if maxK < 10 {
		maxK = 10
	}
	en, err := pitex.NewEngine(net, tagModel, pitex.Options{
		Strategy:        strategy,
		Epsilon:         c.epsilon,
		Delta:           c.delta,
		MaxK:            maxK,
		Seed:            c.seed,
		MaxSamples:      c.maxSamples,
		MaxIndexSamples: c.maxIndexSamples,
		IndexShards:     c.indexShards,
		CheapBounds:     c.cheapBounds,
	})
	if err != nil {
		return err
	}
	if en.IndexBuildTime > 0 {
		logger.Info("index built", "elapsed", en.IndexBuildTime.String(),
			"mb", fmt.Sprintf("%.2f", float64(en.IndexMemoryBytes())/(1<<20)))
	}

	opts := analytics.Options{
		K:              c.k,
		TopN:           c.topN,
		Workers:        c.workers,
		ChunkSize:      c.chunk,
		Users:          cohort,
		CheckpointPath: c.checkpoint,
		Resume:         c.resume,
	}
	if c.progress {
		opts.OnProgress = func(p analytics.Progress) {
			logger.Info("progress",
				"chunks_done", p.ChunksDone, "chunks_total", p.ChunksTotal,
				"users_done", p.UsersDone, "users_total", p.UsersTotal)
		}
	}

	// SIGINT/SIGTERM cancel the sweep; completed chunks flush to the
	// checkpoint, so a later -resume run continues from there.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	lb, err := analytics.Run(ctx, en, opts)
	if err != nil {
		return err
	}
	w := os.Stdout
	if c.out != "" {
		f, err := os.Create(c.out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return lb.WriteJSON(w)
}

// parseUsers parses the -users cohort syntax: comma-separated user IDs
// and inclusive lo-hi ranges, e.g. "3,10-19,42".
func parseUsers(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if lo, hi, ok := strings.Cut(part, "-"); ok {
			a, err1 := strconv.Atoi(strings.TrimSpace(lo))
			b, err2 := strconv.Atoi(strings.TrimSpace(hi))
			if err1 != nil || err2 != nil || a > b {
				return nil, fmt.Errorf("bad -users range %q", part)
			}
			for u := a; u <= b; u++ {
				out = append(out, u)
			}
			continue
		}
		u, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad -users entry %q", part)
		}
		out = append(out, u)
	}
	return out, nil
}
