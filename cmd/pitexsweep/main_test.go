package main

import (
	"bytes"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func testLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func testCfg(dir string) cfg {
	return cfg{
		dataset: "lastfm", scale: 0.02, seed: 1, strategy: "indexest+",
		epsilon: 0.7, delta: 1000, maxSamples: 300, maxIndexSamples: 4000,
		cheapBounds: true,
		k:           2, topN: 10, workers: 2, chunk: 8,
		out: filepath.Join(dir, "board.json"),
	}
}

func TestRunSweepDeterministic(t *testing.T) {
	dir := t.TempDir()
	c := testCfg(dir)
	if err := run(testLogger(), c); err != nil {
		t.Fatalf("run: %v", err)
	}
	first, err := os.ReadFile(c.out)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) == 0 || first[0] != '{' {
		t.Fatalf("output does not look like JSON: %q", first[:min(len(first), 40)])
	}
	// A second run (different worker count) is byte-identical.
	c2 := c
	c2.workers = 4
	c2.out = filepath.Join(dir, "board2.json")
	if err := run(testLogger(), c2); err != nil {
		t.Fatalf("second run: %v", err)
	}
	second, err := os.ReadFile(c2.out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("sweep output depends on -workers")
	}
}

func TestRunSweepResume(t *testing.T) {
	dir := t.TempDir()
	c := testCfg(dir)
	if err := run(testLogger(), c); err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	want, err := os.ReadFile(c.out)
	if err != nil {
		t.Fatal(err)
	}
	// Checkpointed run, then a -resume run over the completed checkpoint:
	// both must reproduce the baseline bytes.
	c.checkpoint = filepath.Join(dir, "sweep.ckpt")
	c.out = filepath.Join(dir, "board-ckpt.json")
	if err := run(testLogger(), c); err != nil {
		t.Fatalf("checkpointed run: %v", err)
	}
	c.resume = true
	c.out = filepath.Join(dir, "board-resumed.json")
	if err := run(testLogger(), c); err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	for _, path := range []string{filepath.Join(dir, "board-ckpt.json"), c.out} {
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("%s diverged from the uncheckpointed baseline", path)
		}
	}
}

func TestRunSweepCohort(t *testing.T) {
	dir := t.TempDir()
	c := testCfg(dir)
	c.users = "0,2,4-6"
	if err := run(testLogger(), c); err != nil {
		t.Fatalf("cohort run: %v", err)
	}
}

func TestRunValidation(t *testing.T) {
	if err := run(testLogger(), cfg{strategy: "bogus"}); err == nil {
		t.Fatal("bogus strategy accepted")
	}
	if err := run(testLogger(), cfg{strategy: "lazy"}); err == nil {
		t.Fatal("missing dataset accepted")
	}
	if err := run(testLogger(), cfg{strategy: "lazy", users: "9-1"}); err == nil {
		t.Fatal("inverted range accepted")
	}
	if err := run(testLogger(), cfg{strategy: "lazy", users: "x"}); err == nil {
		t.Fatal("non-numeric cohort accepted")
	}
}

func TestParseUsers(t *testing.T) {
	got, err := parseUsers(" 3, 10-12 ,42")
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{3, 10, 11, 12, 42}; !reflect.DeepEqual(got, want) {
		t.Fatalf("parseUsers = %v, want %v", got, want)
	}
	if got, err := parseUsers(""); err != nil || got != nil {
		t.Fatalf("empty = %v, %v", got, err)
	}
	for _, bad := range []string{"1-", "-2-3", "a-b", "1,,2"} {
		if _, err := parseUsers(bad); err == nil {
			t.Fatalf("parseUsers(%q) accepted", bad)
		}
	}
}
