// Command benchjson converts `go test -bench` text output into the
// repository's benchmark JSON artifacts, replacing the inline awk
// converters the CI workflow used to carry:
//
//	go test -bench=. -benchtime=1x -benchmem -run '^$' ./... |
//	    benchjson -serve BENCH_serve.json -query bench-artifacts/BENCH_query.json
//
// -serve writes every benchmark line ({name, iterations, ns_per_op, plus
// one key per reported unit, e.g. "B/op", "allocs/op", "edgevisits/op"}).
// -query writes only the BenchmarkQuerySingle/* and BenchmarkSweep/*
// lines in the per-strategy shape cmd/benchgate compares ({name,
// strategy, ns_per_op, bytes_per_op, allocs_per_op}); the strategy is the
// sub-benchmark name with the GOMAXPROCS suffix stripped (so sharded
// variants keep their -S4 marker), namespaced "Sweep/<name>" for the
// population-sweep rows.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// benchLine is one parsed benchmark result.
type benchLine struct {
	Name       string
	Iterations int64
	NsPerOp    float64
	// Extra maps unit → value for everything after ns/op, in input order.
	ExtraUnits  []string
	ExtraValues []float64
}

// extra returns the value reported for unit, or (0, false).
func (b benchLine) extra(unit string) (float64, bool) {
	for i, u := range b.ExtraUnits {
		if u == unit {
			return b.ExtraValues[i], true
		}
	}
	return 0, false
}

// parseBench scans `go test -bench` output for benchmark result lines:
// name, iteration count, ns/op, then (value, unit) pairs.
func parseBench(r io.Reader) ([]benchLine, error) {
	var out []benchLine
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") || f[3] != "ns/op" {
			continue
		}
		iters, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			continue
		}
		ns, err := strconv.ParseFloat(f[2], 64)
		if err != nil {
			continue
		}
		b := benchLine{Name: f[0], Iterations: iters, NsPerOp: ns}
		for i := 4; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				break
			}
			b.ExtraUnits = append(b.ExtraUnits, f[i+1])
			b.ExtraValues = append(b.ExtraValues, v)
		}
		out = append(out, b)
	}
	return out, sc.Err()
}

// jsonNumber renders v without scientific notation (matching the raw
// bench output awk used to pass through).
func jsonNumber(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'f', -1, 64)
}

// serveJSON renders the full benchmark list.
func serveJSON(lines []benchLine) []byte {
	var buf bytes.Buffer
	buf.WriteString("[\n")
	for i, b := range lines {
		if i > 0 {
			buf.WriteString(",\n")
		}
		fmt.Fprintf(&buf, "  {\"name\": %q, \"iterations\": %d, \"ns_per_op\": %s",
			b.Name, b.Iterations, jsonNumber(b.NsPerOp))
		for j, u := range b.ExtraUnits {
			fmt.Fprintf(&buf, ", %q: %s", u, jsonNumber(b.ExtraValues[j]))
		}
		buf.WriteString("}")
	}
	buf.WriteString("\n]\n")
	return buf.Bytes()
}

var procSuffix = regexp.MustCompile(`-[0-9]+$`)

// queryEntry is the BENCH_query.json row shape shared with cmd/benchgate.
type queryEntry struct {
	Name        string   `json:"name"`
	Strategy    string   `json:"strategy"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op"`
	AllocsPerOp *float64 `json:"allocs_per_op"`
}

// queryEntries extracts the per-strategy query benchmark rows: one per
// BenchmarkQuerySingle/* sub-benchmark (strategy = the bare sub-name, the
// historical key) and one per BenchmarkSweep/* sub-benchmark (strategy =
// "Sweep/<sub-name>", so the population-sweep rows can never collide with
// a per-query strategy key in cmd/benchgate).
func queryEntries(lines []benchLine) []queryEntry {
	var out []queryEntry
	for _, b := range lines {
		var strategy string
		switch {
		case strings.HasPrefix(b.Name, "BenchmarkQuerySingle/"):
			strategy = strings.TrimPrefix(b.Name, "BenchmarkQuerySingle/")
		case strings.HasPrefix(b.Name, "BenchmarkSweep/"):
			strategy = "Sweep/" + strings.TrimPrefix(b.Name, "BenchmarkSweep/")
		default:
			continue
		}
		e := queryEntry{
			Name:     b.Name,
			Strategy: procSuffix.ReplaceAllString(strategy, ""),
			NsPerOp:  b.NsPerOp,
		}
		if v, ok := b.extra("B/op"); ok {
			e.BytesPerOp = &v
		}
		if v, ok := b.extra("allocs/op"); ok {
			e.AllocsPerOp = &v
		}
		out = append(out, e)
	}
	return out
}

// distribEntries extracts the BenchmarkDistrib* rows (the distributed
// scatter-gather benchmarks) in the same row shape as -query, keyed by
// the sub-benchmark name under a "Distrib/" namespace.
func distribEntries(lines []benchLine) []queryEntry {
	var out []queryEntry
	for _, b := range lines {
		if !strings.HasPrefix(b.Name, "BenchmarkDistrib") {
			continue
		}
		key := strings.TrimPrefix(b.Name, "Benchmark")
		e := queryEntry{
			Name:     b.Name,
			Strategy: procSuffix.ReplaceAllString(key, ""),
			NsPerOp:  b.NsPerOp,
		}
		if v, ok := b.extra("B/op"); ok {
			e.BytesPerOp = &v
		}
		if v, ok := b.extra("allocs/op"); ok {
			e.AllocsPerOp = &v
		}
		out = append(out, e)
	}
	return out
}

func run(in io.Reader, servePath, queryPath, distribPath string) error {
	if servePath == "" && queryPath == "" && distribPath == "" {
		return fmt.Errorf("nothing to do: pass -serve, -query and/or -distrib")
	}
	lines, err := parseBench(in)
	if err != nil {
		return fmt.Errorf("parse bench output: %w", err)
	}
	if len(lines) == 0 {
		return fmt.Errorf("no benchmark result lines found in input")
	}
	if servePath != "" {
		if err := os.WriteFile(servePath, serveJSON(lines), 0o644); err != nil {
			return err
		}
	}
	if queryPath != "" {
		entries := queryEntries(lines)
		if len(entries) == 0 {
			return fmt.Errorf("no BenchmarkQuerySingle results in input")
		}
		data, err := json.MarshalIndent(entries, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(queryPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	if distribPath != "" {
		entries := distribEntries(lines)
		if len(entries) == 0 {
			return fmt.Errorf("no BenchmarkDistrib results in input")
		}
		data, err := json.MarshalIndent(entries, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(distribPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	return nil
}

func main() {
	var (
		in      = flag.String("in", "", "bench output file (default: stdin)")
		serve   = flag.String("serve", "", "write the full benchmark list here (BENCH_serve.json)")
		query   = flag.String("query", "", "write the per-strategy query rows here (BENCH_query.json)")
		distrib = flag.String("distrib", "", "write the BenchmarkDistrib* rows here (BENCH_distrib.json)")
	)
	flag.Parse()
	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		r = f
	}
	if err := run(r, *serve, *query, *distrib); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
