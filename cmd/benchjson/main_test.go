package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: pitex
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkQuerySingle/LAZY-4         	       1	18267846 ns/op	   30051 B/op	     333 allocs/op
BenchmarkQuerySingle/INDEXEST-4     	       1	11877107 ns/op	   30578 B/op	     324 allocs/op
BenchmarkQuerySingle/INDEXEST-S4-4  	       1	 9877107 ns/op	   31000 B/op	     350 allocs/op
BenchmarkQuerySingle/DELAYMAT-S4    	       1	 9999999 ns/op	   32000 B/op	     360 allocs/op
BenchmarkSweep/INDEXEST+-W4-4       	       3	712345678 ns/op	        64.00 users/op	 2030051 B/op	   21333 allocs/op
BenchmarkAblationLazyVsBernoulli/lazy-geometric-4 	       1	  501234 ns/op	        4096 edgevisits/op
BenchmarkServe/cached-4             	12345678	     103.1 ns/op	       0 B/op	       0 allocs/op
BenchmarkDistribScatter/S3-4        	     100	  1234567 ns/op	   45678 B/op	     512 allocs/op
PASS
ok  	pitex	12.345s
`

func TestParseBench(t *testing.T) {
	lines, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatalf("parseBench: %v", err)
	}
	if len(lines) != 8 {
		t.Fatalf("parsed %d lines, want 8", len(lines))
	}
	if lines[0].Name != "BenchmarkQuerySingle/LAZY-4" || lines[0].NsPerOp != 18267846 {
		t.Fatalf("first line parsed as %+v", lines[0])
	}
	if v, ok := lines[0].extra("allocs/op"); !ok || v != 333 {
		t.Fatalf("allocs/op = %v (%v)", v, ok)
	}
	if v, ok := lines[4].extra("users/op"); !ok || v != 64 {
		t.Fatalf("sweep users/op lost: %v (%v)", v, ok)
	}
	if v, ok := lines[5].extra("edgevisits/op"); !ok || v != 4096 {
		t.Fatalf("custom metric lost: %v (%v)", v, ok)
	}
	if lines[6].Iterations != 12345678 || lines[6].NsPerOp != 103.1 {
		t.Fatalf("fractional ns line parsed as %+v", lines[6])
	}
}

func TestQueryEntriesStrategyNames(t *testing.T) {
	lines, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatalf("parseBench: %v", err)
	}
	entries := queryEntries(lines)
	if len(entries) != 5 {
		t.Fatalf("query entries = %d, want 5", len(entries))
	}
	// The DELAYMAT row has no GOMAXPROCS suffix (go test omits it at
	// GOMAXPROCS=1); the -S4 and -W4 markers must survive either way, and
	// sweep rows carry the Sweep/ namespace so their keys never collide
	// with per-query strategies.
	want := []string{"LAZY", "INDEXEST", "INDEXEST-S4", "DELAYMAT-S4", "Sweep/INDEXEST+-W4"}
	for i, e := range entries {
		if e.Strategy != want[i] {
			t.Errorf("entry %d strategy = %q, want %q", i, e.Strategy, want[i])
		}
		if e.BytesPerOp == nil || e.AllocsPerOp == nil {
			t.Errorf("entry %d lost benchmem metrics", i)
		}
	}
}

func TestRunWritesValidJSON(t *testing.T) {
	dir := t.TempDir()
	servePath := filepath.Join(dir, "serve.json")
	queryPath := filepath.Join(dir, "query.json")
	distribPath := filepath.Join(dir, "distrib.json")
	if err := run(strings.NewReader(sampleBench), servePath, queryPath, distribPath); err != nil {
		t.Fatalf("run: %v", err)
	}
	var serveDoc []map[string]any
	data, err := os.ReadFile(servePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &serveDoc); err != nil {
		t.Fatalf("serve JSON invalid: %v\n%s", err, data)
	}
	if len(serveDoc) != 8 {
		t.Fatalf("serve JSON has %d rows, want 8", len(serveDoc))
	}
	if serveDoc[0]["ns_per_op"].(float64) != 18267846 {
		t.Fatalf("serve row 0: %v", serveDoc[0])
	}
	if serveDoc[5]["edgevisits/op"].(float64) != 4096 {
		t.Fatalf("serve row 5 lost custom metric: %v", serveDoc[5])
	}
	var queryDoc []queryEntry
	data, err = os.ReadFile(queryPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &queryDoc); err != nil {
		t.Fatalf("query JSON invalid: %v", err)
	}
	if len(queryDoc) != 5 || queryDoc[2].Strategy != "INDEXEST-S4" || queryDoc[4].Strategy != "Sweep/INDEXEST+-W4" {
		t.Fatalf("query JSON rows: %+v", queryDoc)
	}
	var distribDoc []queryEntry
	data, err = os.ReadFile(distribPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &distribDoc); err != nil {
		t.Fatalf("distrib JSON invalid: %v", err)
	}
	if len(distribDoc) != 1 || distribDoc[0].Strategy != "DistribScatter/S3" {
		t.Fatalf("distrib JSON rows: %+v", distribDoc)
	}
	if distribDoc[0].BytesPerOp == nil || *distribDoc[0].BytesPerOp != 45678 {
		t.Fatalf("distrib row lost benchmem metrics: %+v", distribDoc[0])
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	if err := run(strings.NewReader("no benchmarks here\n"), "", filepath.Join(t.TempDir(), "q.json"), ""); err == nil {
		t.Fatal("empty bench output accepted")
	}
	if err := run(strings.NewReader(sampleBench), "", "", ""); err == nil {
		t.Fatal("no-output invocation accepted")
	}
}
