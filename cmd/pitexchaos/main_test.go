package main

import "testing"

// TestSoakDeterministic runs the full episode sequence twice with one
// seed and demands byte-identical evidence digests: same final answers,
// same healed shard snapshots. This is the property that makes any chaos
// failure reproducible from its seed alone.
func TestSoakDeterministic(t *testing.T) {
	cfg := soakConfig{
		users: 24, topics: 3, tags: 5,
		groups: 3, replicas: 2, horizon: 4, queries: 6,
	}
	first, err := runSoak(cfg, 1)
	if err != nil {
		t.Fatalf("soak run 1: %v", err)
	}
	second, err := runSoak(cfg, 1)
	if err != nil {
		t.Fatalf("soak run 2: %v", err)
	}
	if first.digest != second.digest {
		t.Fatalf("same seed, different digests: %s vs %s", first.digest, second.digest)
	}
	if first.journalReplays == 0 || first.resyncs == 0 {
		t.Fatalf("soak exercised %d replays / %d resyncs; want both > 0",
			first.journalReplays, first.resyncs)
	}
	if first.degraded == 0 || first.exact == 0 {
		t.Fatalf("soak saw %d exact / %d degraded answers; want both > 0",
			first.exact, first.degraded)
	}
}
