// Command pitexchaos is a deterministic chaos soak for the distributed
// serving plane: it stands up an in-process scatter-gather cluster
// (coordinator + replicated shard servers), then walks it through seeded
// fault episodes — estimate-path noise, replica kills, whole-group
// outages, past-horizon gaps, corrupted payloads — while continuously
// asserting the system's robustness invariants:
//
//   - Every query answer is either exact (byte-equal to a fault-free
//     reference engine) or explicitly degraded with a correctly computed
//     achieved ε = ε·sqrt(θ_total/θ_responding).
//   - After faults stop, every endpoint converges to the head generation
//     without a restart: small gaps heal by update-journal replay, gaps
//     past the journal horizon heal by /shard/resync full-state copy.
//   - Replicas of the same group serialize byte-identically afterwards.
//   - The whole stack tears down without leaking goroutines.
//
// All randomness (topology, update batches, query mix, fault schedules)
// derives from -seeds, so a failure reproduces by rerunning the seed.
//
// Usage:
//
//	pitexchaos -seeds 1,2,3
//	pitexchaos -seeds 7 -queries 20 -v
package main

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"pitex"
	"pitex/distrib"
	"pitex/internal/faultinject"
	"pitex/internal/rng"
	"pitex/serve"
)

func main() {
	var (
		seedList = flag.String("seeds", "1,2,3", "comma-separated soak seeds; each runs one full episode sequence")
		queries  = flag.Int("queries", 12, "queries per episode")
		groups   = flag.Int("groups", 3, "shard groups S")
		replicas = flag.Int("replicas", 2, "replicas per group")
		horizon  = flag.Int("horizon", 4, "coordinator journal horizon (generations)")
		verbose  = flag.Bool("v", false, "log per-episode progress")
	)
	flag.Parse()
	cfg := soakConfig{
		users: 24, topics: 3, tags: 5,
		groups: *groups, replicas: *replicas,
		horizon: *horizon, queries: *queries, verbose: *verbose,
	}
	failed := false
	for _, f := range strings.Split(*seedList, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		seed, err := strconv.ParseUint(f, 10, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pitexchaos: bad seed %q: %v\n", f, err)
			os.Exit(2)
		}
		rep, err := runSoak(cfg, seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pitexchaos: seed %d FAILED: %v\n", seed, err)
			failed = true
			continue
		}
		fmt.Printf("seed %d ok: gen %d, %d exact, %d degraded, %d replays, %d resyncs, digest %s\n",
			seed, rep.finalGen, rep.exact, rep.degraded, rep.journalReplays, rep.resyncs, rep.digest[:12])
	}
	if failed {
		os.Exit(1)
	}
}

type soakConfig struct {
	users, topics, tags int
	groups, replicas    int
	horizon             int
	queries             int
	verbose             bool
}

type soakReport struct {
	finalGen       uint64
	exact          int
	degraded       int
	journalReplays int64
	resyncs        int64
	digest         string
}

// chaosProxy fronts one shard server; killed connections are torn down
// mid-flight (http.ErrAbortHandler aborts without a response), the shape
// of a crashed process rather than a clean 5xx.
type chaosProxy struct {
	inner http.Handler
	dead  atomic.Bool
}

func (p *chaosProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if p.dead.Load() {
		panic(http.ErrAbortHandler)
	}
	p.inner.ServeHTTP(w, r)
}

// buildNet generates the seeded soak topology. Called twice per soak —
// once for the shard fleet, once for the fault-free reference engine —
// and fully deterministic in seed, so the two are identical.
func buildNet(cfg soakConfig, seed uint64) (*pitex.Network, *pitex.TagModel, [][2]int, error) {
	r := rng.New(rng.Mix(seed, 0xc11a05))
	nb := pitex.NewNetworkBuilder(cfg.users, cfg.topics)
	seen := make(map[[2]int]bool)
	var edges [][2]int
	for from := 0; from < cfg.users; from++ {
		for e := 0; e < 2; e++ {
			to := r.Intn(cfg.users)
			if to == from || seen[[2]int{from, to}] {
				continue
			}
			seen[[2]int{from, to}] = true
			edges = append(edges, [2]int{from, to})
			nb.AddEdge(from, to,
				pitex.TopicProb{Topic: r.Intn(cfg.topics), Prob: 0.2 + 0.6*r.Float64()})
		}
	}
	net, err := nb.Build()
	if err != nil {
		return nil, nil, nil, err
	}
	model, err := pitex.NewTagModel(cfg.tags, cfg.topics)
	if err != nil {
		return nil, nil, nil, err
	}
	for w := 0; w < cfg.tags; w++ {
		row := make([]float64, cfg.topics)
		var sum float64
		for z := range row {
			row[z] = 0.1 + r.Float64()
			sum += row[z]
		}
		for z, p := range row {
			if err := model.SetTagTopic(w, z, p/sum); err != nil {
				return nil, nil, nil, err
			}
		}
	}
	return net, model, edges, nil
}

func soakOptions(cfg soakConfig, seed uint64) pitex.Options {
	return pitex.Options{
		Strategy:        pitex.StrategyIndexPruned,
		Epsilon:         0.15,
		Delta:           200,
		MaxK:            4,
		Seed:            rng.Mix(seed, 0xe716), // engine seed, decorrelated from topology
		MaxSamples:      20000,
		MaxIndexSamples: 20000,
		IndexShards:     cfg.groups,
		TrackUpdates:    true,
		// The soak's exactness contract diffs cluster answers against the
		// local reference engine. A remote coordinator cannot frontier-batch
		// (estimations cross the wire one candidate at a time), while a local
		// engine batches and may stop sibling scans early — a legitimate
		// (ε,δ)-approximation divergence that is not the fault-injection
		// machinery under test. Pinning the ablation knob keeps both sides in
		// the same estimation mode so "exact" means bit-exact.
		DisableEarlyStop: true,
	}
}

// soak bundles the running cluster plus the lockstep reference engine.
type soak struct {
	cfg     soakConfig
	seed    uint64
	coord   *serve.Server
	client  *distrib.Client
	servers []*serve.ShardServer
	proxies [][]*chaosProxy  // [group][replica]
	urls    [][]string       // [group][replica]
	ref     *pitex.Engine    // fault-free reference, updated in lockstep
	edges   map[[2]int][]int // live edge set -> topic ids (mutation targets)
	mut     *rng.Source      // drives update batches
	qmix    *rng.Source      // drives the query mix
	exact   int
	degr    int
	digest  *bytes.Buffer // final-phase evidence, hashed into the report
}

func runSoak(cfg soakConfig, seed uint64) (soakReport, error) {
	goroutinesBefore := runtime.NumGoroutine()
	s, closers, err := setupSoak(cfg, seed)
	if err != nil {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
		return soakReport{}, err
	}
	rep, soakErr := s.episodes()
	faultinject.Disable()
	for i := len(closers) - 1; i >= 0; i-- {
		closers[i]()
	}
	if soakErr != nil {
		return soakReport{}, soakErr
	}
	// Leak check: everything we started must be gone. Allow small slack
	// for runtime-internal goroutines settling.
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > goroutinesBefore+2 {
		if time.Now().After(deadline) {
			return soakReport{}, fmt.Errorf("goroutine leak: %d before, %d after teardown",
				goroutinesBefore, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
	return rep, nil
}

func setupSoak(cfg soakConfig, seed uint64) (*soak, []func(), error) {
	var closers []func()
	net, model, edges, err := buildNet(cfg, seed)
	if err != nil {
		return nil, closers, err
	}
	opts := soakOptions(cfg, seed)

	s := &soak{
		cfg: cfg, seed: seed,
		proxies: make([][]*chaosProxy, cfg.groups),
		urls:    make([][]string, cfg.groups),
		edges:   make(map[[2]int][]int, len(edges)),
		mut:     rng.New(rng.Mix(seed, 0xba7c4)),
		qmix:    rng.New(rng.Mix(seed, 0x9e12)),
		digest:  &bytes.Buffer{},
	}
	for _, e := range edges {
		s.edges[e] = nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	for g := 0; g < cfg.groups; g++ {
		for r := 0; r < cfg.replicas; r++ {
			ss, err := serve.NewShardServer(net, model, opts, serve.ShardConfig{
				TotalShards: cfg.groups, Owned: []int{g},
			})
			if err != nil {
				return nil, closers, fmt.Errorf("shard server %d/%d: %w", g, r, err)
			}
			closers = append(closers, ss.Close)
			if err := ss.WaitReady(ctx); err != nil {
				return nil, closers, fmt.Errorf("shard %d/%d build: %w", g, r, err)
			}
			px := &chaosProxy{inner: ss.Handler()}
			ts := httptest.NewServer(px)
			closers = append(closers, ts.Close)
			s.servers = append(s.servers, ss)
			s.proxies[g] = append(s.proxies[g], px)
			s.urls[g] = append(s.urls[g], ts.URL)
		}
	}
	client, err := distrib.Dial(ctx, s.urls, distrib.Options{
		ShardDeadline:     2 * time.Second,
		ReconcileInterval: 25 * time.Millisecond,
		HealBackoff:       25 * time.Millisecond,
		JournalHorizon:    cfg.horizon,
		JitterSeed:        seed,
	})
	if err != nil {
		return nil, closers, fmt.Errorf("dial: %w", err)
	}
	ren, err := pitex.NewRemoteEngine(net, model, opts, client)
	if err != nil {
		client.Close()
		return nil, closers, err
	}
	coord, err := serve.NewCoordinator(ren, client, pitex.ServeOptions{
		PoolSize: 2, CacheCapacity: -1, // no cache: every answer is a live scatter
	})
	if err != nil {
		client.Close()
		return nil, closers, err
	}
	closers = append(closers, coord.Close) // closes the client too
	s.coord, s.client = coord, client

	refNet, refModel, _, err := buildNet(cfg, seed)
	if err != nil {
		return nil, closers, err
	}
	s.ref, err = pitex.NewEngine(refNet, refModel, opts)
	if err != nil {
		return nil, closers, err
	}
	return s, closers, nil
}

// mutation builds one random valid update batch; invoked twice (remote
// and reference consume separate but equal batches).
func (s *soak) mutation() func() *pitex.UpdateBatch {
	// Mostly re-weight an existing edge; occasionally insert a new one.
	if s.mut.Float64() < 0.25 {
		for tries := 0; tries < 64; tries++ {
			from, to := s.mut.Intn(s.cfg.users), s.mut.Intn(s.cfg.users)
			if from == to {
				continue
			}
			if _, ok := s.edges[[2]int{from, to}]; ok {
				continue
			}
			topic, prob := s.mut.Intn(s.cfg.topics), 0.2+0.6*s.mut.Float64()
			s.edges[[2]int{from, to}] = nil
			return func() *pitex.UpdateBatch {
				var b pitex.UpdateBatch
				b.InsertEdge(from, to, pitex.TopicProb{Topic: topic, Prob: prob})
				return &b
			}
		}
	}
	// Deterministic pick of an existing edge: order the map walk by index.
	keys := make([][2]int, 0, len(s.edges))
	for k := range s.edges {
		keys = append(keys, k)
	}
	// Map iteration order is random; sort for determinism.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && less(keys[j], keys[j-1]); j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	e := keys[s.mut.Intn(len(keys))]
	topic, prob := s.mut.Intn(s.cfg.topics), 0.2+0.6*s.mut.Float64()
	return func() *pitex.UpdateBatch {
		var b pitex.UpdateBatch
		b.SetEdge(e[0], e[1], pitex.TopicProb{Topic: topic, Prob: prob})
		return &b
	}
}

func less(a, b [2]int) bool { return a[0] < b[0] || (a[0] == b[0] && a[1] < b[1]) }

// applyUpdate commits one mutation to the cluster and the reference in
// lockstep.
func (s *soak) applyUpdate() error {
	mk := s.mutation()
	if _, err := s.coord.ApplyUpdates(mk()); err != nil {
		return fmt.Errorf("cluster update: %w", err)
	}
	next, _, err := s.ref.ApplyUpdates(mk())
	if err != nil {
		return fmt.Errorf("reference update: %w", err)
	}
	s.ref = next
	return nil
}

// checkQuery runs one query through the coordinator and enforces the
// exact-or-degraded invariant. final-phase answers also feed the digest.
func (s *soak) checkQuery(final bool) error {
	user, k := s.qmix.Intn(s.cfg.users), 1+s.qmix.Intn(2)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	res, _, err := s.coord.SellingPoints(ctx, user, k, 1, nil)
	if err != nil {
		return fmt.Errorf("query user=%d k=%d: %w", user, k, err)
	}
	if res.Degraded != nil {
		s.degr++
		d := res.Degraded
		want := d.TargetEpsilon
		if d.RespondingTheta > 0 && d.TotalTheta > d.RespondingTheta {
			want = d.TargetEpsilon * math.Sqrt(float64(d.TotalTheta)/float64(d.RespondingTheta))
		}
		if math.Abs(d.AchievedEpsilon-want) > 1e-12 {
			return fmt.Errorf("user=%d k=%d: achieved ε %v, want %v (θ %d/%d)",
				user, k, d.AchievedEpsilon, want, d.RespondingTheta, d.TotalTheta)
		}
		if final {
			return fmt.Errorf("user=%d k=%d: degraded answer after the fleet converged", user, k)
		}
		return nil
	}
	// Undegraded answers must be exactly the fault-free reference's.
	refRes, err := s.ref.Clone().QueryTopCtx(ctx, user, k, 1)
	if err != nil {
		return fmt.Errorf("reference query user=%d k=%d: %w", user, k, err)
	}
	if fmt.Sprint(res.Tags) != fmt.Sprint(refRes.Tags) || res.Influence != refRes.Influence {
		return fmt.Errorf("user=%d k=%d: cluster answered %v/%v, reference %v/%v",
			user, k, res.Tags, res.Influence, refRes.Tags, refRes.Influence)
	}
	s.exact++
	if final {
		fmt.Fprintf(s.digest, "q u=%d k=%d tags=%v inf=%s\n",
			user, k, res.Tags, strconv.FormatFloat(res.Influence, 'g', -1, 64))
	}
	return nil
}

func (s *soak) logf(format string, args ...any) {
	if s.cfg.verbose {
		fmt.Printf("  seed %d: "+format+"\n", append([]any{s.seed}, args...)...)
	}
}

// waitConverged polls until every endpoint reports the head generation.
func (s *soak) waitConverged() error {
	head := s.client.Generation()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := s.client.Status()
		all := true
		for _, g := range st.Groups {
			for _, ep := range g.Endpoints {
				if ep.Generation != head {
					all = false
				}
			}
		}
		if all {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("fleet never converged to generation %d: %+v", head, st.Groups)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func (s *soak) queriesPhase(final bool) error {
	for i := 0; i < s.cfg.queries; i++ {
		if err := s.checkQuery(final); err != nil {
			return err
		}
	}
	return nil
}

func (s *soak) episodes() (soakReport, error) {
	// Episode 0 — warmup: healthy fleet, every answer exact.
	s.logf("episode 0: warmup")
	if err := s.queriesPhase(false); err != nil {
		return soakReport{}, fmt.Errorf("warmup: %w", err)
	}
	if s.degr != 0 {
		return soakReport{}, fmt.Errorf("warmup produced %d degraded answers on a healthy fleet", s.degr)
	}
	if err := s.applyUpdate(); err != nil {
		return soakReport{}, err
	}

	// Episode 1 — estimate noise: seeded error + latency faults on the
	// shard estimate path. Failover and hedging absorb single-replica
	// faults; a fully-failed group degrades the answer, never corrupts it.
	s.logf("episode 1: estimate noise")
	if err := faultinject.Enable(s.seed, []faultinject.Rule{
		{Point: faultinject.PointShardEstimate, Mode: faultinject.ModeError, Prob: 0.25, Count: 200},
		{Point: faultinject.PointShardEstimate, Mode: faultinject.ModeLatency, Latency: 2 * time.Millisecond, Prob: 0.25, Count: 200},
	}); err != nil {
		return soakReport{}, err
	}
	if err := s.queriesPhase(false); err != nil {
		return soakReport{}, fmt.Errorf("noise episode: %w", err)
	}
	faultinject.Disable()

	// Episode 2 — single-replica crash, small gap: the dead replica
	// misses two generations and heals by journal replay after revival.
	s.logf("episode 2: replica crash + journal replay")
	replaysBefore := s.client.Status().JournalReplays
	s.proxies[0][1].dead.Store(true)
	for i := 0; i < 2; i++ {
		if err := s.applyUpdate(); err != nil {
			return soakReport{}, err
		}
	}
	if err := s.queriesPhase(false); err != nil {
		return soakReport{}, fmt.Errorf("replica-down episode: %w", err)
	}
	s.proxies[0][1].dead.Store(false)
	if err := s.waitConverged(); err != nil {
		return soakReport{}, fmt.Errorf("after replica crash: %w", err)
	}
	st := s.client.Status()
	if st.JournalReplays <= replaysBefore {
		return soakReport{}, fmt.Errorf("small gap healed without journal replay (replays %d -> %d, resyncs %d)",
			replaysBefore, st.JournalReplays, st.Resyncs)
	}

	// Episode 3 — whole-group outage: answers degrade (with the weakened
	// ε computed over the missing group's θ) and both replicas heal by
	// replay once revived.
	s.logf("episode 3: whole-group outage")
	for _, px := range s.proxies[1] {
		px.dead.Store(true)
	}
	if err := s.applyUpdate(); err != nil {
		return soakReport{}, err
	}
	degrBefore := s.degr
	if err := s.queriesPhase(false); err != nil {
		return soakReport{}, fmt.Errorf("group-down episode: %w", err)
	}
	if s.degr == degrBefore {
		return soakReport{}, fmt.Errorf("whole-group outage produced no degraded answers")
	}
	for _, px := range s.proxies[1] {
		px.dead.Store(false)
	}
	if err := s.waitConverged(); err != nil {
		return soakReport{}, fmt.Errorf("after group outage: %w", err)
	}

	// Episode 4 — past-horizon gap: the dead replica misses more
	// generations than the journal retains; healing must go through a
	// full /shard/resync copy from its in-group sibling.
	s.logf("episode 4: past-horizon gap + resync")
	resyncsBefore := s.client.Status().Resyncs
	s.proxies[2][1].dead.Store(true)
	for i := 0; i < s.cfg.horizon+2; i++ {
		if err := s.applyUpdate(); err != nil {
			return soakReport{}, err
		}
	}
	s.proxies[2][1].dead.Store(false)
	if err := s.waitConverged(); err != nil {
		return soakReport{}, fmt.Errorf("after past-horizon gap: %w", err)
	}
	st = s.client.Status()
	if st.Resyncs <= resyncsBefore {
		return soakReport{}, fmt.Errorf("past-horizon gap healed without resync (resyncs %d -> %d)",
			resyncsBefore, st.Resyncs)
	}

	// Episode 5 — corrupted payloads: shard responses arrive mangled;
	// decode hardening turns them into failovers or degradation, never
	// silently wrong answers.
	s.logf("episode 5: corrupt payloads")
	if err := faultinject.Enable(s.seed+1, []faultinject.Rule{
		{Point: faultinject.PointShardEstimate, Mode: faultinject.ModeCorrupt, Prob: 0.25, Count: 100},
	}); err != nil {
		return soakReport{}, err
	}
	if err := s.queriesPhase(false); err != nil {
		return soakReport{}, fmt.Errorf("corrupt episode: %w", err)
	}
	faultinject.Disable()

	// Episode 6 — convergence: faults off, fleet at head, every answer
	// exact again, and in-group replicas byte-identical.
	s.logf("episode 6: final convergence")
	if err := s.waitConverged(); err != nil {
		return soakReport{}, fmt.Errorf("final: %w", err)
	}
	if err := s.queriesPhase(true); err != nil {
		return soakReport{}, fmt.Errorf("final queries: %w", err)
	}
	for g := range s.urls {
		var first []byte
		for r, url := range s.urls[g] {
			snap, err := fetchSnapshot(url)
			if err != nil {
				return soakReport{}, fmt.Errorf("snapshot group %d replica %d: %w", g, r, err)
			}
			if r == 0 {
				first = snap
				fmt.Fprintf(s.digest, "snap g=%d sha=%x\n", g, sha256.Sum256(snap))
			} else if !bytes.Equal(first, snap) {
				return soakReport{}, fmt.Errorf("group %d replicas not byte-identical after healing", g)
			}
		}
	}

	sum := sha256.Sum256(s.digest.Bytes())
	return soakReport{
		finalGen:       s.client.Generation(),
		exact:          s.exact,
		degraded:       s.degr,
		journalReplays: s.client.Status().JournalReplays,
		resyncs:        s.client.Status().Resyncs,
		digest:         hex.EncodeToString(sum[:]),
	}, nil
}

func fetchSnapshot(url string) ([]byte, error) {
	resp, err := http.Get(url + "/shard/resync")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /shard/resync: status %d", resp.StatusCode)
	}
	return data, nil
}
