package main

import (
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"pitex"
	"pitex/serve"
)

func testServeOptions() pitex.ServeOptions {
	return pitex.ServeOptions{PoolSize: 2, QueueTimeout: 10 * time.Second}
}

func discardf(string, ...any) {}

func TestParseStrategy(t *testing.T) {
	cases := map[string]pitex.Strategy{
		"lazy": pitex.StrategyLazy, "LAZY": pitex.StrategyLazy,
		"mc": pitex.StrategyMC, "rr": pitex.StrategyRR, "tim": pitex.StrategyTIM,
		"indexest": pitex.StrategyIndex, "index": pitex.StrategyIndex,
		"indexest+": pitex.StrategyIndexPruned, "index+": pitex.StrategyIndexPruned,
		"delaymat": pitex.StrategyDelay, "delay": pitex.StrategyDelay,
	}
	for in, want := range cases {
		got, err := pitex.ParseStrategy(in)
		if err != nil || got != want {
			t.Errorf("ParseStrategy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := pitex.ParseStrategy("bogus"); err == nil {
		t.Fatal("bogus strategy accepted")
	}
}

func TestSetupAndServe(t *testing.T) {
	srv, err := setup(buildConfig{
		dataset: "lastfm", seed: 1, scale: 0.02, strategy: "indexest+",
		epsilon: 0.7, delta: 1000, maxSamples: 500, maxIndexSamples: 4000,
		cheapBounds: true, maxK: 10,
	}, testServeOptions(), discardf)
	if err != nil {
		t.Fatalf("setup: %v", err)
	}
	defer srv.Close()

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for _, url := range []string{
		"/selling-points?user=0&k=2",
		"/audience?user=0&tags=0,1&m=3&samples=500",
		"/healthz",
		"/statsz",
	} {
		resp, err := ts.Client().Get(ts.URL + url)
		if err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("GET %s: status %d, want 200", url, resp.StatusCode)
		}
	}
}

func TestSetupFromFilesWithSavedIndex(t *testing.T) {
	dir := t.TempDir()
	spec, err := pitex.BaseDatasetSpec("lastfm")
	if err != nil {
		t.Fatal(err)
	}
	net, model, err := pitex.GenerateDatasetSpec(spec.Scaled(0.02), 1)
	if err != nil {
		t.Fatal(err)
	}
	opts := pitex.Options{Strategy: pitex.StrategyIndexPruned, Seed: 1,
		MaxSamples: 500, MaxIndexSamples: 4000, CheapBounds: true}
	en, err := pitex.NewEngine(net, model, opts)
	if err != nil {
		t.Fatal(err)
	}

	np := filepath.Join(dir, "g.network")
	mp := filepath.Join(dir, "g.model")
	ip := filepath.Join(dir, "g.index")
	for _, w := range []struct {
		path  string
		write func(f io.Writer) error
	}{
		{np, net.Write},
		{mp, model.Write},
		{ip, en.SaveIndex},
	} {
		f, err := os.Create(w.path)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.write(f); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}

	srv, err := setup(buildConfig{
		network: np, model: mp, index: ip, seed: 1, strategy: "indexest+",
		epsilon: 0.7, delta: 1000, maxSamples: 500, maxIndexSamples: 4000,
		cheapBounds: true, maxK: 10,
	}, testServeOptions(), discardf)
	if err != nil {
		t.Fatalf("setup with saved index: %v", err)
	}
	srv.Close()
}

// TestSaveIndexFlagRoundTrip covers the -save-index → -index restart
// workflow: the first setup pays offline construction and persists the
// index; the second loads it instead of rebuilding.
func TestSaveIndexFlagRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ip := filepath.Join(dir, "saved.index")
	base := buildConfig{
		dataset: "lastfm", seed: 1, scale: 0.02, strategy: "delaymat",
		epsilon: 0.7, delta: 1000, maxSamples: 500, maxIndexSamples: 4000,
		cheapBounds: true, maxK: 10,
	}

	cfg := base
	cfg.saveIndex = ip
	srv, err := setup(cfg, testServeOptions(), discardf)
	if err != nil {
		t.Fatalf("setup with -save-index: %v", err)
	}
	srv.Close()
	if st, err := os.Stat(ip); err != nil || st.Size() == 0 {
		t.Fatalf("index file not written: %v", err)
	}
	// No stray temp files from the atomic write.
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) != 1 {
		t.Fatalf("directory has %d entries (err %v), want only the index", len(entries), err)
	}

	cfg = base
	cfg.index = ip
	srv, err = setup(cfg, testServeOptions(), discardf)
	if err != nil {
		t.Fatalf("setup with -index: %v", err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/selling-points?user=0&k=2")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("query over loaded index: status %d", resp.StatusCode)
	}

	// Saving an online strategy's (nonexistent) index must fail loudly.
	cfg = base
	cfg.strategy, cfg.saveIndex = "lazy", filepath.Join(dir, "nope.index")
	if _, err := setup(cfg, testServeOptions(), discardf); err == nil {
		t.Fatal("-save-index with an online strategy accepted")
	}
}

func TestSetupValidation(t *testing.T) {
	base := buildConfig{epsilon: 0.7, delta: 1000, maxK: 10}

	cfg := base
	if _, err := setup(cfg, testServeOptions(), discardf); err == nil {
		t.Error("missing inputs accepted")
	}
	cfg = base
	cfg.dataset, cfg.strategy = "lastfm", "bogus"
	if _, err := setup(cfg, testServeOptions(), discardf); err == nil {
		t.Error("bogus strategy accepted")
	}
	cfg = base
	cfg.dataset, cfg.strategy, cfg.scale = "nope", "lazy", 1
	if _, err := setup(cfg, testServeOptions(), discardf); err == nil {
		t.Error("unknown dataset accepted")
	}
	cfg = base
	cfg.network, cfg.model, cfg.strategy = "/does/not/exist", "/nope", "lazy"
	if _, err := setup(cfg, testServeOptions(), discardf); err == nil {
		t.Error("missing files accepted")
	}
}

func TestParseShardGroups(t *testing.T) {
	cases := []struct {
		in   string
		want [][]string
		ok   bool
	}{
		{"h1:8501", [][]string{{"h1:8501"}}, true},
		{"h1:8501,h2:8502", [][]string{{"h1:8501"}, {"h2:8502"}}, true},
		{"h1:8501|h1b:8501,h2:8502", [][]string{{"h1:8501", "h1b:8501"}, {"h2:8502"}}, true},
		{" h1:8501 , , h2:8502 ", [][]string{{"h1:8501"}, {"h2:8502"}}, true},
		{"", nil, false},
		{",|,", nil, false},
	}
	for _, c := range cases {
		got, err := parseShardGroups(c.in)
		if (err == nil) != c.ok {
			t.Errorf("parseShardGroups(%q) err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && !reflect.DeepEqual(got, c.want) {
			t.Errorf("parseShardGroups(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

// coordinatorConfig is the fleet-matching flag set for coordinator tests
// (the shard server below is built from the same dataset recipe).
func coordinatorConfig(shards string) buildConfig {
	return buildConfig{
		dataset: "lastfm", seed: 1, scale: 0.02, strategy: "indexest+",
		epsilon: 0.7, delta: 1000, maxSamples: 500, maxIndexSamples: 4000,
		cheapBounds: true, maxK: 10,
		shards: shards, shardDeadline: 2 * time.Second,
	}
}

// TestSetupCoordinator dials a real in-process shard server and serves a
// query through the scatter path end to end.
func TestSetupCoordinator(t *testing.T) {
	spec, err := pitex.BaseDatasetSpec("lastfm")
	if err != nil {
		t.Fatal(err)
	}
	net, model, err := pitex.GenerateDatasetSpec(spec.Scaled(0.02), 1)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := serve.NewShardServer(net, model, pitex.Options{
		Strategy: pitex.StrategyIndexPruned, Epsilon: 0.7, Delta: 1000, MaxK: 10,
		Seed: 1, MaxSamples: 500, MaxIndexSamples: 4000,
	}, serve.ShardConfig{TotalShards: 1})
	if err != nil {
		t.Fatalf("NewShardServer: %v", err)
	}
	shard := httptest.NewServer(ss.Handler())
	defer shard.Close()

	srv, err := setup(coordinatorConfig(shard.URL), testServeOptions(), discardf)
	if err != nil {
		t.Fatalf("coordinator setup: %v", err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/selling-points?user=0&k=2")
	if err != nil {
		t.Fatalf("GET selling-points: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("scattered query = %d", resp.StatusCode)
	}
}

func TestSetupCoordinatorErrors(t *testing.T) {
	cfg := coordinatorConfig("localhost:1") // nothing listens on port 1
	cfg.index = "index.bin"
	if _, err := setup(cfg, testServeOptions(), discardf); err == nil {
		t.Error("-index accepted in coordinator mode")
	}
	cfg = coordinatorConfig("")
	cfg.shards = " , "
	if _, err := setup(cfg, testServeOptions(), discardf); err == nil {
		t.Error("empty -shards spec accepted")
	}
}

// TestSetupCoordinatorStrategyMismatch: the fleet's strategy is part of
// the wire contract; a coordinator asking for a different one must fail
// fast at dial time.
func TestSetupCoordinatorStrategyMismatch(t *testing.T) {
	spec, err := pitex.BaseDatasetSpec("lastfm")
	if err != nil {
		t.Fatal(err)
	}
	net, model, err := pitex.GenerateDatasetSpec(spec.Scaled(0.02), 1)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := serve.NewShardServer(net, model, pitex.Options{
		Strategy: pitex.StrategyIndex, Epsilon: 0.7, Delta: 1000, MaxK: 10,
		Seed: 1, MaxSamples: 500, MaxIndexSamples: 4000,
	}, serve.ShardConfig{TotalShards: 1})
	if err != nil {
		t.Fatalf("NewShardServer: %v", err)
	}
	shard := httptest.NewServer(ss.Handler())
	defer shard.Close()
	if _, err := setup(coordinatorConfig(shard.URL), testServeOptions(), discardf); err == nil {
		t.Error("strategy mismatch accepted")
	}
}
