// Command pitexserve runs the production PITEX query-serving subsystem
// (package pitex/serve): an engine-clone pool with admission control, a
// sharded result cache with in-flight deduplication, and an HTTP/JSON
// surface with latency histograms on /statsz.
//
// Usage:
//
//	pitexserve -dataset lastfm -strategy indexest+ -addr :8437
//	curl 'localhost:8437/selling-points?user=12&k=3'
//	curl 'localhost:8437/audience?user=12&tags=1,4&m=5'
//	curl 'localhost:8437/statsz'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the -debug-addr mux
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"pitex"
	"pitex/distrib"
	"pitex/internal/faultinject"
	"pitex/obsv"
	"pitex/serve"
)

func main() {
	var (
		dataset  = flag.String("dataset", "", "generate this dataset (lastfm, diggs, dblp, twitter)")
		network  = flag.String("network", "", "network file (alternative to -dataset)")
		model    = flag.String("model", "", "tag model file (required with -network)")
		index    = flag.String("index", "", "offline index file written by SaveIndex (skips construction)")
		saveIdx  = flag.String("save-index", "", "write the offline index here after construction, so the next restart can -index it")
		track    = flag.Bool("track-updates", true, "keep incremental-repair bookkeeping for /admin/update (DelayMat pays extra memory)")
		seed     = flag.Uint64("seed", 1, "generation / sampling seed")
		scale    = flag.Float64("scale", 1.0, "dataset scale factor (with -dataset)")
		strategy = flag.String("strategy", "indexest+", "lazy, mc, rr, tim, indexest, indexest+, delaymat")
		epsilon  = flag.Float64("epsilon", 0.7, "relative error bound")
		delta    = flag.Float64("delta", 1000, "failure probability control (1/delta)")
		maxSamp  = flag.Int64("max-samples", 5000, "per-estimation sample cap (0 = theoretical)")
		maxIdx   = flag.Int64("max-index-samples", 200000, "offline sample cap (0 = theoretical)")
		idxShard = flag.Int("index-shards", 0, "hash-partition the offline index into this many shards (0/1 = monolithic)")
		cheap    = flag.Bool("cheap-bounds", true, "use one-BFS upper bounds in best-effort exploration")
		maxK     = flag.Int("max-k", 10, "largest supported query size k")

		shardsFl = flag.String("shards", "", "coordinator mode: shard-server groups, comma-separated; replicas within a group separated by '|' (e.g. 'h1:8501|h1b:8501,h2:8502')")
		shardTO  = flag.Duration("shard-deadline", 2*time.Second, "per-shard-group fetch deadline in coordinator mode (hedges included)")
		horizon  = flag.Int("journal-horizon", 0, "update-journal depth in generations for endpoint catch-up replay (0 = default)")
		healIntv = flag.Duration("reconcile-interval", 0, "anti-entropy reconciler poll interval (0 = default, negative disables)")

		addr     = flag.String("addr", "localhost:8437", "listen address")
		pool     = flag.Int("pool", 0, "engine pool size (0 = GOMAXPROCS)")
		queue    = flag.Int("queue", 0, "admission queue depth beyond the pool (0 = 4x pool, negative = no queue)")
		queueTO  = flag.Duration("queue-timeout", 5*time.Second, "max wait for a free engine (0 = 5s default, negative = none)")
		queryTO  = flag.Duration("query-timeout", 0, "per-query deadline (0 = 30s default, negative = none)")
		cacheCap = flag.Int("cache", 4096, "result cache capacity in entries (negative disables)")
		shards   = flag.Int("cache-shards", 16, "cache shard count")
		sweepDir = flag.String("sweep-checkpoint-dir", "", "directory for POST /admin/jobs checkpoint files (empty rejects checkpointed jobs over HTTP)")
		drainTO  = flag.Duration("drain-timeout", 10*time.Second, "max time to drain in-flight HTTP requests on shutdown")

		debugAddr = flag.String("debug-addr", "", "serve net/http/pprof on this address (empty disables)")
		logFormat = flag.String("log-format", "text", "log output format: text or json")

		faults    = flag.String("faults", "", "deterministic fault-injection spec for chaos testing, e.g. 'distrib/roundtrip:latency=50ms:p=0.1' (never enable in production)")
		faultSeed = flag.Uint64("fault-seed", 1, "seed of the fault-injection schedule (with -faults)")
	)
	flag.Parse()
	logger, err := obsv.NewLogger(os.Stderr, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pitexserve:", err)
		os.Exit(1)
	}
	slog.SetDefault(logger)
	if *faults != "" {
		rules, err := faultinject.Parse(*faults)
		if err == nil {
			err = faultinject.Enable(*faultSeed, rules)
		}
		if err != nil {
			logger.Error("bad -faults", "err", err)
			os.Exit(1)
		}
		logger.Warn("fault injection ENABLED", "spec", *faults, "seed", *faultSeed)
	}
	// All the work lives in run so cleanup (pool shutdown, job
	// cancellation) executes on the error path too — os.Exit straight
	// from main after ListenAndServe fails would skip it.
	if err := run(logger, buildConfig{
		dataset: *dataset, network: *network, model: *model, index: *index,
		saveIndex: *saveIdx, trackUpdates: *track,
		seed: *seed, scale: *scale, strategy: *strategy,
		epsilon: *epsilon, delta: *delta, maxSamples: *maxSamp,
		maxIndexSamples: *maxIdx, indexShards: *idxShard, cheapBounds: *cheap, maxK: *maxK,
		shards: *shardsFl, shardDeadline: *shardTO,
		journalHorizon: *horizon, reconcileInterval: *healIntv,
	}, pitex.ServeOptions{
		PoolSize: *pool, QueueDepth: *queue,
		QueueTimeout: *queueTO, QueryTimeout: *queryTO,
		CacheCapacity: *cacheCap, CacheShards: *shards,
		SweepCheckpointDir: *sweepDir,
	}, *debugAddr, *addr, *drainTO); err != nil {
		logger.Error("exiting", "err", err)
		os.Exit(1)
	}
}

func run(logger *slog.Logger, cfg buildConfig, sopts pitex.ServeOptions, debugAddr, addr string, drainTO time.Duration) error {
	logf := func(format string, args ...any) {
		logger.Info(fmt.Sprintf(format, args...))
	}
	srv, err := setup(cfg, sopts, logf)
	if err != nil {
		return err
	}
	defer srv.Close()
	if debugAddr != "" {
		// The pprof import registers on http.DefaultServeMux; keep that
		// mux off the main listener so profiling stays on its own port.
		go func() {
			logger.Info("debug server listening", "addr", debugAddr)
			if err := http.ListenAndServe(debugAddr, nil); err != nil {
				logger.Error("debug server failed", "err", err)
			}
		}()
	}
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	// SIGINT/SIGTERM drain in-flight requests, then the pool shuts down.
	idle := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		logger.Info("shutting down")
		// A bounded drain: Shutdown with a background context would wait
		// forever on a stuck client holding its connection open. Past the
		// timeout, remaining connections are force-closed.
		ctx, cancel := context.WithTimeout(context.Background(), drainTO)
		if err := httpSrv.Shutdown(ctx); err != nil {
			_ = httpSrv.Close()
		}
		cancel()
		close(idle)
	}()
	logger.Info("listening", "addr", addr)
	if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	<-idle
	logger.Info("shutdown complete")
	return nil
}

// buildConfig collects the engine-construction flags.
type buildConfig struct {
	dataset, network, model, index string
	saveIndex                      string
	trackUpdates                   bool
	seed                           uint64
	scale                          float64
	strategy                       string
	epsilon, delta                 float64
	maxSamples, maxIndexSamples    int64
	indexShards                    int
	cheapBounds                    bool
	maxK                           int
	// shards switches setup into coordinator mode: a distrib client is
	// dialed over the groups and the server scatters to them instead of
	// holding a local index.
	shards            string
	shardDeadline     time.Duration
	journalHorizon    int
	reconcileInterval time.Duration
}

// setup builds the engine (running or loading the offline phase) and wraps
// it in the serving subsystem. logf receives progress lines.
func setup(cfg buildConfig, sopts pitex.ServeOptions, logf func(string, ...any)) (*serve.Server, error) {
	strategy, err := pitex.ParseStrategy(cfg.strategy)
	if err != nil {
		return nil, err
	}

	var net *pitex.Network
	var model *pitex.TagModel
	switch {
	case cfg.dataset != "":
		spec, err := pitex.BaseDatasetSpec(cfg.dataset)
		if err != nil {
			return nil, err
		}
		if cfg.scale != 1.0 {
			spec = spec.Scaled(cfg.scale)
		}
		net, model, err = pitex.GenerateDatasetSpec(spec, cfg.seed)
		if err != nil {
			return nil, err
		}
	case cfg.network != "" && cfg.model != "":
		nf, err := os.Open(cfg.network)
		if err != nil {
			return nil, err
		}
		defer nf.Close()
		net, err = pitex.ReadNetwork(nf)
		if err != nil {
			return nil, err
		}
		mf, err := os.Open(cfg.model)
		if err != nil {
			return nil, err
		}
		defer mf.Close()
		model, err = pitex.ReadTagModel(mf)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("need either -dataset or both -network and -model")
	}

	opts := pitex.Options{
		Strategy:        strategy,
		Epsilon:         cfg.epsilon,
		Delta:           cfg.delta,
		MaxK:            cfg.maxK,
		Seed:            cfg.seed,
		MaxSamples:      cfg.maxSamples,
		MaxIndexSamples: cfg.maxIndexSamples,
		IndexShards:     cfg.indexShards,
		CheapBounds:     cfg.cheapBounds,
		TrackUpdates:    cfg.trackUpdates,
	}
	if cfg.shards != "" {
		if cfg.index != "" || cfg.saveIndex != "" {
			return nil, fmt.Errorf("-index/-save-index do not apply in coordinator mode (-shards)")
		}
		groups, err := parseShardGroups(cfg.shards)
		if err != nil {
			return nil, err
		}
		dialCtx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()
		client, err := distrib.Dial(dialCtx, groups, distrib.Options{
			ShardDeadline:     cfg.shardDeadline,
			JournalHorizon:    cfg.journalHorizon,
			ReconcileInterval: cfg.reconcileInterval,
			JitterSeed:        cfg.seed,
		})
		if err != nil {
			return nil, err
		}
		if got := client.Strategy(); got != strategy.String() {
			return nil, fmt.Errorf("shard servers run strategy %s, coordinator asked for %s", got, strategy)
		}
		en, err := pitex.NewRemoteEngine(net, model, opts, client)
		if err != nil {
			return nil, err
		}
		srv, err := serve.NewCoordinator(en, client, sopts)
		if err != nil {
			return nil, err
		}
		eff := sopts.WithDefaults()
		logf("coordinating %d index shards over %d groups; %d workers, queue depth %d, cache %d entries",
			client.TotalShards(), len(groups), eff.PoolSize, eff.QueueDepth, eff.CacheCapacity)
		return srv, nil
	}

	var en *pitex.Engine
	if cfg.index != "" {
		f, err := os.Open(cfg.index)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		en, err = pitex.NewEngineWithIndex(net, model, opts, f)
		if err != nil {
			return nil, err
		}
		logf("index loaded in %v (%.2f MB) over %d users",
			en.IndexBuildTime, float64(en.IndexMemoryBytes())/(1<<20), net.NumUsers())
	} else {
		en, err = pitex.NewEngine(net, model, opts)
		if err != nil {
			return nil, err
		}
		if en.IndexBuildTime > 0 {
			logf("index built in %v (%.2f MB) over %d users",
				en.IndexBuildTime, float64(en.IndexMemoryBytes())/(1<<20), net.NumUsers())
		}
	}
	// Outside the build branch so -index input.idx -save-index output.idx
	// re-persists a loaded index instead of silently skipping the write.
	if cfg.saveIndex != "" {
		if err := saveIndexFile(en, cfg.saveIndex); err != nil {
			return nil, err
		}
		logf("index saved to %s", cfg.saveIndex)
	}
	srv, err := serve.New(en, sopts)
	if err != nil {
		return nil, err
	}
	eff := sopts.WithDefaults()
	logf("serving %s with %d engine workers, queue depth %d, cache %d entries",
		en.Strategy(), eff.PoolSize, eff.QueueDepth, eff.CacheCapacity)
	return srv, nil
}

// parseShardGroups splits the -shards syntax: groups separated by commas,
// replica endpoints within a group by '|'.
func parseShardGroups(spec string) ([][]string, error) {
	var groups [][]string
	for _, g := range strings.Split(spec, ",") {
		var reps []string
		for _, r := range strings.Split(g, "|") {
			if r = strings.TrimSpace(r); r != "" {
				reps = append(reps, r)
			}
		}
		if len(reps) > 0 {
			groups = append(groups, reps)
		}
	}
	if len(groups) == 0 {
		return nil, fmt.Errorf("-shards %q names no endpoints", spec)
	}
	return groups, nil
}

// saveIndexFile writes the engine's offline structure atomically enough
// for a restart workflow: to a temp file first, renamed into place, so a
// crash mid-write never leaves a truncated index where -index expects a
// good one.
func saveIndexFile(en *pitex.Engine, path string) error {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if err := en.SaveIndex(f); err != nil {
		_ = f.Close()
		os.Remove(f.Name())
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return err
	}
	return os.Rename(f.Name(), path)
}
