// Command obsvsmoke drives the observability surface of a running PITEX
// fleet end to end and exits non-zero when any check fails. It is the CI
// companion of the distrib smoke test:
//
//  1. /metrics on the coordinator and every shard server must parse as
//     strict Prometheus text and carry a pitex_build_info sample.
//  2. A traced query (?trace=1) against the coordinator must return a
//     span tree containing a shard-rpc span.
//  3. The trace ID of that query must appear in at least one shard
//     server's /tracez ring — proving the X-Pitex-Trace header
//     propagated across the RPC boundary.
//
// Usage:
//
//	obsvsmoke -coordinator localhost:8437 -shards localhost:8501,localhost:8502
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"pitex/obsv"
)

func main() {
	var (
		coord  = flag.String("coordinator", "localhost:8437", "coordinator host:port")
		shards = flag.String("shards", "", "comma-separated shard-server host:port list")
		user   = flag.Int("user", 1, "user ID for the traced query")
		k      = flag.Int("k", 2, "tag-set size for the traced query")
	)
	flag.Parse()
	var shardAddrs []string
	for _, s := range strings.Split(*shards, ",") {
		if s = strings.TrimSpace(s); s != "" {
			shardAddrs = append(shardAddrs, s)
		}
	}
	if err := run(*coord, shardAddrs, *user, *k); err != nil {
		fmt.Fprintln(os.Stderr, "obsvsmoke:", err)
		os.Exit(1)
	}
	fmt.Println("obsvsmoke: all checks passed")
}

func run(coord string, shards []string, user, k int) error {
	client := &http.Client{Timeout: 10 * time.Second}

	// Check 1: strict-parse /metrics everywhere; build info must be there.
	for _, addr := range append([]string{coord}, shards...) {
		fams, err := scrapeMetrics(client, addr)
		if err != nil {
			return fmt.Errorf("%s: %w", addr, err)
		}
		if _, ok := fams["pitex_build_info"]; !ok {
			return fmt.Errorf("%s: /metrics has no pitex_build_info", addr)
		}
		fmt.Printf("%s: /metrics parsed, %d families\n", addr, len(fams))
	}

	// Check 2: a traced query returns a span tree with a shard-rpc span.
	var out struct {
		Trace *obsv.TraceData `json:"trace"`
	}
	url := fmt.Sprintf("http://%s/selling-points?user=%d&k=%d&trace=1", coord, user, k)
	if err := getJSON(client, url, &out); err != nil {
		return err
	}
	if out.Trace == nil {
		return fmt.Errorf("traced query returned no trace field")
	}
	if out.Trace.TraceID == "" {
		return fmt.Errorf("traced query returned an empty trace ID")
	}
	var sawRPC bool
	for _, sp := range out.Trace.Spans {
		if sp.Name == "shard-rpc" {
			sawRPC = true
			break
		}
	}
	if !sawRPC {
		names := make([]string, 0, len(out.Trace.Spans))
		for _, sp := range out.Trace.Spans {
			names = append(names, sp.Name)
		}
		return fmt.Errorf("trace %s has no shard-rpc span (spans: %s)",
			out.Trace.TraceID, strings.Join(names, ", "))
	}
	fmt.Printf("%s: trace %s carries %d spans incl. shard-rpc\n",
		coord, out.Trace.TraceID, len(out.Trace.Spans))

	// Check 3: the same trace ID shows up on a shard's /tracez, i.e. the
	// wire header propagated and the shard joined the trace.
	found := false
	for _, addr := range shards {
		var tz struct {
			Traces []obsv.TraceData `json:"traces"`
		}
		if err := getJSON(client, "http://"+addr+"/tracez", &tz); err != nil {
			return err
		}
		for _, tr := range tz.Traces {
			if tr.TraceID == out.Trace.TraceID {
				fmt.Printf("%s: /tracez holds trace %s (%d spans)\n", addr, tr.TraceID, len(tr.Spans))
				found = true
				break
			}
		}
	}
	if len(shards) > 0 && !found {
		return fmt.Errorf("trace %s not found in any shard /tracez", out.Trace.TraceID)
	}
	return nil
}

// scrapeMetrics fetches and strictly parses an endpoint's /metrics.
func scrapeMetrics(client *http.Client, addr string) (map[string]*obsv.ParsedFamily, error) {
	resp, err := client.Get("http://" + addr + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		return nil, fmt.Errorf("/metrics content-type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return obsv.ParseText(string(body))
}

func getJSON(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
