package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"pitex/obsv"
)

// fakeFleet wires httptest servers that impersonate a coordinator and one
// shard, sharing a trace ID so the propagation check has something real
// to verify.
func fakeFleet(t *testing.T, traceID string, shardHasTrace bool) (coord, shard string) {
	t.Helper()
	metrics := func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprintln(w, "# TYPE pitex_build_info gauge")
		fmt.Fprintln(w, `pitex_build_info{go_version="go1.24"} 1`)
	}
	cm := http.NewServeMux()
	cm.HandleFunc("/metrics", metrics)
	cm.HandleFunc("/selling-points", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `{"trace":{"trace_id":%q,"name":"selling-points","spans":[{"name":"shard-rpc","span_id":"aa"}]}}`, traceID)
	})
	cs := httptest.NewServer(cm)
	t.Cleanup(cs.Close)

	sm := http.NewServeMux()
	sm.HandleFunc("/metrics", metrics)
	sm.HandleFunc("/tracez", func(w http.ResponseWriter, _ *http.Request) {
		id := traceID
		if !shardHasTrace {
			id = "ffffffffffffffff"
		}
		fmt.Fprintf(w, `{"traces":[{"trace_id":%q,"name":"shard-estimate","spans":[]}]}`, id)
	})
	ss := httptest.NewServer(sm)
	t.Cleanup(ss.Close)
	return strings.TrimPrefix(cs.URL, "http://"), strings.TrimPrefix(ss.URL, "http://")
}

func TestRunAllChecksPass(t *testing.T) {
	coord, shard := fakeFleet(t, "deadbeefdeadbeef", true)
	if err := run(coord, []string{shard}, 1, 2); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunDetectsMissingPropagation(t *testing.T) {
	coord, shard := fakeFleet(t, "deadbeefdeadbeef", false)
	err := run(coord, []string{shard}, 1, 2)
	if err == nil || !strings.Contains(err.Error(), "not found in any shard /tracez") {
		t.Fatalf("err = %v, want propagation failure", err)
	}
}

func TestRunDetectsInvalidMetrics(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		fmt.Fprintln(w, "pitex_orphan_bucket{le=\"1\"} 3") // bucket without TYPE
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	if err := run(strings.TrimPrefix(ts.URL, "http://"), nil, 1, 2); err == nil {
		t.Fatal("malformed exposition accepted")
	}
}

func TestScrapeMetricsRejectsWrongContentType(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, "{}")
	}))
	defer ts.Close()
	if _, err := scrapeMetrics(http.DefaultClient, strings.TrimPrefix(ts.URL, "http://")); err == nil {
		t.Fatal("JSON content-type accepted as Prometheus text")
	}
}

func TestRunRequiresShardRPCSpan(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		fmt.Fprintln(w, "# TYPE pitex_build_info gauge")
		fmt.Fprintln(w, "pitex_build_info 1")
	})
	mux.HandleFunc("/selling-points", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, `{"trace":{"trace_id":"deadbeefdeadbeef","name":"q","spans":[{"name":"query","span_id":"aa"}]}}`)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	err := run(strings.TrimPrefix(ts.URL, "http://"), nil, 1, 2)
	if err == nil || !strings.Contains(err.Error(), "no shard-rpc span") {
		t.Fatalf("err = %v, want missing shard-rpc failure", err)
	}
}

// Guard the parser the smoke test leans on: the strict obsv parser must
// reject what client_golang's would.
func TestStrictParserBaseline(t *testing.T) {
	if _, err := obsv.ParseText("# TYPE x counter\nx 1\n"); err != nil {
		t.Fatalf("minimal exposition rejected: %v", err)
	}
	if _, err := obsv.ParseText("# TYPE x bogus\nx 1\n"); err == nil {
		t.Fatal("unknown family type accepted")
	}
}
