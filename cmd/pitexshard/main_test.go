package main

import (
	"context"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"
)

func discardf(string, ...any) {}

func TestParseOwned(t *testing.T) {
	cases := []struct {
		in   string
		want []int
		ok   bool
	}{
		{"", nil, true},
		{"  ", nil, true},
		{"0", []int{0}, true},
		{"0,2,5", []int{0, 2, 5}, true},
		{" 1 , 3 ", []int{1, 3}, true},
		{"0,,2", []int{0, 2}, true},
		{"x", nil, false},
		{"0,two", nil, false},
	}
	for _, c := range cases {
		got, err := parseOwned(c.in)
		if (err == nil) != c.ok {
			t.Errorf("parseOwned(%q) err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && !reflect.DeepEqual(got, c.want) {
			t.Errorf("parseOwned(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestSetupAndServeShard(t *testing.T) {
	ss, err := setup(shardConfig{
		dataset: "lastfm", seed: 1, scale: 0.02, strategy: "indexest+",
		epsilon: 0.7, delta: 1000, maxSamples: 500, maxIndexSamples: 4000,
		indexShards: 2, maxK: 10, own: "0",
	}, discardf)
	if err != nil {
		t.Fatalf("setup: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := ss.WaitReady(ctx); err != nil {
		t.Fatalf("WaitReady: %v", err)
	}

	ts := httptest.NewServer(ss.Handler())
	defer ts.Close()
	for _, url := range []string{"/healthz", "/readyz", "/shard/info", "/statsz"} {
		resp, err := ts.Client().Get(ts.URL + url)
		if err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s = %d", url, resp.StatusCode)
		}
	}
}

func TestSetupErrors(t *testing.T) {
	cases := map[string]shardConfig{
		"no input":     {strategy: "indexest+", epsilon: 0.7, delta: 1000, maxK: 10},
		"bad strategy": {dataset: "lastfm", scale: 0.02, strategy: "bogus", epsilon: 0.7, delta: 1000, maxK: 10},
		"bad own":      {dataset: "lastfm", scale: 0.02, strategy: "indexest+", epsilon: 0.7, delta: 1000, maxK: 10, own: "zero"},
		"own outside layout": {dataset: "lastfm", scale: 0.02, strategy: "indexest+",
			epsilon: 0.7, delta: 1000, maxK: 10, indexShards: 2, own: "7"},
		"online strategy": {dataset: "lastfm", scale: 0.02, strategy: "lazy",
			epsilon: 0.7, delta: 1000, maxK: 10},
	}
	for name, cfg := range cases {
		cfg.seed = 1
		cfg.maxSamples = 500
		cfg.maxIndexSamples = 4000
		if _, err := setup(cfg, discardf); err == nil {
			t.Errorf("%s: setup succeeded", name)
		}
	}
}
