// Command pitexshard runs one shard server of the distributed PITEX
// serving topology: it builds the RR-index slices for the shard ids it
// owns and answers the /shard/* HTTP protocol (partial estimates, counter
// reads, generation-keyed repairs) that a pitexserve coordinator started
// with -shards scatters to.
//
// Usage (a two-server layout over four index shards):
//
//	pitexshard -dataset lastfm -index-shards 4 -own 0,1 -addr :8501
//	pitexshard -dataset lastfm -index-shards 4 -own 2,3 -addr :8502
//	pitexserve -dataset lastfm -index-shards 4 -shards localhost:8501,localhost:8502
//
// Every server generates or loads the same network and tag model (the
// graph is shared; only the index is partitioned), so the -dataset/-seed
// or -network/-model flags must match across the fleet.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the -debug-addr mux
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"pitex"
	"pitex/internal/faultinject"
	"pitex/obsv"
	"pitex/serve"
)

func main() {
	var (
		dataset  = flag.String("dataset", "", "generate this dataset (lastfm, diggs, dblp, twitter)")
		network  = flag.String("network", "", "network file (alternative to -dataset)")
		model    = flag.String("model", "", "tag model file (required with -network)")
		track    = flag.Bool("track-updates", true, "keep incremental-repair bookkeeping for /shard/update")
		seed     = flag.Uint64("seed", 1, "generation / sampling seed (must match the coordinator)")
		scale    = flag.Float64("scale", 1.0, "dataset scale factor (with -dataset)")
		strategy = flag.String("strategy", "indexest+", "indexest, indexest+, delaymat")
		epsilon  = flag.Float64("epsilon", 0.7, "relative error bound")
		delta    = flag.Float64("delta", 1000, "failure probability control (1/delta)")
		maxSamp  = flag.Int64("max-samples", 5000, "per-estimation sample cap (0 = theoretical)")
		maxIdx   = flag.Int64("max-index-samples", 200000, "offline sample cap (0 = theoretical)")
		idxShard = flag.Int("index-shards", 1, "total shard count S of the cluster layout")
		maxK     = flag.Int("max-k", 10, "largest supported query size k (must match the coordinator)")

		own     = flag.String("own", "", "comma-separated shard ids this server holds (default: all of [0,S))")
		addr    = flag.String("addr", "localhost:8501", "listen address")
		workers = flag.Int("workers", 0, "concurrent estimation workers (0 = default)")
		queue   = flag.Int("queue", 0, "admission queue depth behind the workers (0 = default)")
		queueTO = flag.Duration("queue-timeout", 0, "max wait for a free worker (0 = default)")
		drainTO = flag.Duration("drain-timeout", 10*time.Second, "max time to drain in-flight HTTP requests on shutdown")

		debugAddr = flag.String("debug-addr", "", "serve net/http/pprof on this address (empty disables)")
		logFormat = flag.String("log-format", "text", "log output format: text or json")

		faults    = flag.String("faults", "", "deterministic fault-injection spec for chaos testing, e.g. 'serve/shard/estimate:error:p=0.05' (never enable in production)")
		faultSeed = flag.Uint64("fault-seed", 1, "seed of the fault-injection schedule (with -faults)")
	)
	flag.Parse()
	logger, err := obsv.NewLogger(os.Stderr, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pitexshard:", err)
		os.Exit(1)
	}
	slog.SetDefault(logger)
	if *faults != "" {
		rules, err := faultinject.Parse(*faults)
		if err == nil {
			err = faultinject.Enable(*faultSeed, rules)
		}
		if err != nil {
			logger.Error("bad -faults", "err", err)
			os.Exit(1)
		}
		logger.Warn("fault injection ENABLED", "spec", *faults, "seed", *faultSeed)
	}
	if err := run(logger, shardConfig{
		dataset: *dataset, network: *network, model: *model,
		trackUpdates: *track, seed: *seed, scale: *scale,
		strategy: *strategy, epsilon: *epsilon, delta: *delta,
		maxSamples: *maxSamp, maxIndexSamples: *maxIdx,
		indexShards: *idxShard, maxK: *maxK, own: *own,
		workers: *workers, queue: *queue, queueTimeout: *queueTO,
	}, *debugAddr, *addr, *drainTO); err != nil {
		logger.Error("exiting", "err", err)
		os.Exit(1)
	}
}

func run(logger *slog.Logger, cfg shardConfig, debugAddr, addr string, drainTO time.Duration) error {
	logf := func(format string, args ...any) {
		logger.Info(fmt.Sprintf(format, args...))
	}
	ss, err := setup(cfg, logf)
	if err != nil {
		return err
	}
	if debugAddr != "" {
		// The pprof import registers on http.DefaultServeMux; keep that
		// mux off the main listener so profiling stays on its own port.
		go func() {
			logger.Info("debug server listening", "addr", debugAddr)
			if err := http.ListenAndServe(debugAddr, nil); err != nil {
				logger.Error("debug server failed", "err", err)
			}
		}()
	}
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           ss.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	idle := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		logger.Info("shutting down")
		// Bounded drain, same as pitexserve: never let a stuck client
		// hold shutdown hostage.
		ctx, cancel := context.WithTimeout(context.Background(), drainTO)
		if err := httpSrv.Shutdown(ctx); err != nil {
			_ = httpSrv.Close()
		}
		cancel()
		close(idle)
	}()
	logger.Info("listening", "addr", addr)
	if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	<-idle
	logger.Info("shutdown complete")
	return nil
}

type shardConfig struct {
	dataset, network, model     string
	trackUpdates                bool
	seed                        uint64
	scale                       float64
	strategy                    string
	epsilon, delta              float64
	maxSamples, maxIndexSamples int64
	indexShards                 int
	maxK                        int
	own                         string
	workers, queue              int
	queueTimeout                time.Duration
}

func setup(cfg shardConfig, logf func(string, ...any)) (*serve.ShardServer, error) {
	strategy, err := pitex.ParseStrategy(cfg.strategy)
	if err != nil {
		return nil, err
	}

	var net *pitex.Network
	var model *pitex.TagModel
	switch {
	case cfg.dataset != "":
		spec, err := pitex.BaseDatasetSpec(cfg.dataset)
		if err != nil {
			return nil, err
		}
		if cfg.scale != 1.0 {
			spec = spec.Scaled(cfg.scale)
		}
		net, model, err = pitex.GenerateDatasetSpec(spec, cfg.seed)
		if err != nil {
			return nil, err
		}
	case cfg.network != "" && cfg.model != "":
		nf, err := os.Open(cfg.network)
		if err != nil {
			return nil, err
		}
		defer nf.Close()
		net, err = pitex.ReadNetwork(nf)
		if err != nil {
			return nil, err
		}
		mf, err := os.Open(cfg.model)
		if err != nil {
			return nil, err
		}
		defer mf.Close()
		model, err = pitex.ReadTagModel(mf)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("need either -dataset or both -network and -model")
	}

	owned, err := parseOwned(cfg.own)
	if err != nil {
		return nil, err
	}
	ss, err := serve.NewShardServer(net, model, pitex.Options{
		Strategy:        strategy,
		Epsilon:         cfg.epsilon,
		Delta:           cfg.delta,
		MaxK:            cfg.maxK,
		Seed:            cfg.seed,
		MaxSamples:      cfg.maxSamples,
		MaxIndexSamples: cfg.maxIndexSamples,
		IndexShards:     cfg.indexShards,
		TrackUpdates:    cfg.trackUpdates,
	}, serve.ShardConfig{
		TotalShards:  cfg.indexShards,
		Owned:        owned,
		Workers:      cfg.workers,
		QueueDepth:   cfg.queue,
		QueueTimeout: cfg.queueTimeout,
	})
	if err != nil {
		return nil, err
	}
	if len(owned) == 0 {
		logf("building all %d shard slices for %s over %d users", max(1, cfg.indexShards), strategy, net.NumUsers())
	} else {
		logf("building shard slices %v of %d for %s over %d users", owned, cfg.indexShards, strategy, net.NumUsers())
	}
	return ss, nil
}

// parseOwned splits "-own 0,2,5" into shard ids; empty means all.
func parseOwned(spec string) ([]int, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(spec, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		id, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("-own: bad shard id %q", f)
		}
		out = append(out, id)
	}
	return out, nil
}
