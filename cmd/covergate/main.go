// Command covergate fails CI when total test coverage drops below the
// recorded baseline:
//
//	go test ./... -coverprofile=cover.out
//	go tool cover -func=cover.out | covergate -min 63.0
//
// It reads `go tool cover -func` output on stdin, extracts the trailing
// "total:" percentage, prints it, and exits nonzero when it is below
// -min. Keeping the floor in the workflow file (not here) makes coverage
// regressions a reviewed, intentional change.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// totalCoverage extracts the percentage from the "total:" line of
// `go tool cover -func` output.
func totalCoverage(r io.Reader) (float64, error) {
	sc := bufio.NewScanner(r)
	total := -1.0
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 3 || f[0] != "total:" {
			continue
		}
		pct := strings.TrimSuffix(f[len(f)-1], "%")
		v, err := strconv.ParseFloat(pct, 64)
		if err != nil {
			return 0, fmt.Errorf("unparseable total line %q", sc.Text())
		}
		total = v
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	if total < 0 {
		return 0, fmt.Errorf("no total: line found — is this `go tool cover -func` output?")
	}
	return total, nil
}

func run(r io.Reader, min float64) error {
	total, err := totalCoverage(r)
	if err != nil {
		return err
	}
	fmt.Printf("covergate: total coverage %.1f%% (floor %.1f%%)\n", total, min)
	if total < min {
		return fmt.Errorf("coverage %.1f%% fell below the %.1f%% baseline", total, min)
	}
	return nil
}

func main() {
	min := flag.Float64("min", 0, "fail when total coverage (percent) is below this")
	flag.Parse()
	if err := run(os.Stdin, *min); err != nil {
		fmt.Fprintln(os.Stderr, "covergate:", err)
		os.Exit(1)
	}
}
