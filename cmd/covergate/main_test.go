package main

import (
	"strings"
	"testing"
)

const sampleFunc = `pitex/engine.go:82:		NewEngine		95.2%
pitex/engine.go:179:		Clone			100.0%
pitex/serve/pool.go:75:		NewPool			88.9%
total:				(statements)	71.4%
`

func TestTotalCoverage(t *testing.T) {
	got, err := totalCoverage(strings.NewReader(sampleFunc))
	if err != nil {
		t.Fatalf("totalCoverage: %v", err)
	}
	if got != 71.4 {
		t.Fatalf("total = %v, want 71.4", got)
	}
}

func TestRunEnforcesFloor(t *testing.T) {
	if err := run(strings.NewReader(sampleFunc), 70.0); err != nil {
		t.Fatalf("coverage above floor rejected: %v", err)
	}
	if err := run(strings.NewReader(sampleFunc), 72.0); err == nil {
		t.Fatal("coverage below floor accepted")
	}
}

func TestTotalCoverageRejectsGarbage(t *testing.T) {
	if _, err := totalCoverage(strings.NewReader("not cover output\n")); err == nil {
		t.Fatal("garbage input accepted")
	}
	if _, err := totalCoverage(strings.NewReader("total: (statements) zz%\n")); err == nil {
		t.Fatal("unparseable total accepted")
	}
}
