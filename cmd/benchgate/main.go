// Command benchgate fails CI when a fresh benchmark run regresses
// against the committed baseline:
//
//	benchgate -baseline BENCH_query.json -baseline-run sharded_pr4 \
//	          -fresh bench-artifacts/BENCH_query.json
//
// The baseline is either a flat array of rows (the cmd/benchjson output
// shape) or the repository's curated BENCH_query.json, whose runs map
// holds one row list per recorded run (-baseline-run selects which). Rows
// are matched per strategy; a match fails the gate when ns_per_op exceeds
// baseline·-max-ns-ratio (default 1.25, i.e. >25% slower) or
// allocs_per_op exceeds baseline·-max-allocs-ratio (default 1.10). A gate
// that matches nothing fails too — a silently empty comparison would read
// as a pass.
//
// Baselines are recorded on whatever machine cut the PR, while CI runners
// have their own (and varying) speed, so raw wall-clock comparisons would
// gate on hardware rather than code. With four or more matched rows the
// ns check therefore self-calibrates: the median fresh/baseline ns ratio
// is taken as the machine-speed factor (floored at 1 so a fast runner
// never tightens the gate), and a strategy fails only when it is >25%
// slower than that shared drift — i.e. it regressed relative to its
// peers. A uniform slowdown across every strategy hides inside the
// factor; the allocation gate (machine-independent) is the backstop for
// those. Pass -no-ns-calibrate to compare raw wall-clock instead.
//
// Multi-threaded benchmarks (e.g. the Sweep/* rows, which fan work over
// worker goroutines) scale with the runner's core count rather than its
// single-thread speed, so neither the raw comparison nor the calibration
// factor fits them: exempt such rows from the ns gate with
// -ns-skip '^Sweep/' — their allocation counts are still gated.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
)

// row is one benchmark measurement, shared by both baseline formats.
type row struct {
	Name        string   `json:"name"`
	Strategy    string   `json:"strategy"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op"`
	AllocsPerOp *float64 `json:"allocs_per_op"`
}

// curatedFile is the committed BENCH_query.json shape: named runs, each
// with a result list.
type curatedFile struct {
	Runs map[string]struct {
		Results []row `json:"results"`
	} `json:"runs"`
}

var procSuffix = regexp.MustCompile(`-[0-9]+$`)

// key identifies a row across runs: the strategy when present, otherwise
// the benchmark name with the GOMAXPROCS suffix stripped.
func (r row) key() string {
	if r.Strategy != "" {
		return r.Strategy
	}
	return procSuffix.ReplaceAllString(r.Name, "")
}

// loadRows reads a baseline or fresh file, resolving the curated runs-map
// format through runName (required for that format, ignored for flat
// arrays).
func loadRows(path, runName string) ([]row, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var flat []row
	if err := json.Unmarshal(data, &flat); err == nil {
		return flat, nil
	}
	var curated curatedFile
	if err := json.Unmarshal(data, &curated); err != nil || len(curated.Runs) == 0 {
		return nil, fmt.Errorf("%s: neither a row array nor a runs map", path)
	}
	if runName == "" {
		return nil, fmt.Errorf("%s holds runs %v; pick one with -baseline-run", path, runNames(curated))
	}
	run, ok := curated.Runs[runName]
	if !ok {
		return nil, fmt.Errorf("%s has no run %q (have %v)", path, runName, runNames(curated))
	}
	return run.Results, nil
}

func runNames(c curatedFile) []string {
	names := make([]string, 0, len(c.Runs))
	for n := range c.Runs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// minRowsForCalibration is how many matched rows the ns check needs
// before the median fresh/baseline ratio is a usable machine-speed
// estimate; below it the factor would be dominated by the very rows it
// is supposed to judge.
const minRowsForCalibration = 4

// machineFactor estimates how much slower the fresh machine is than the
// baseline one: the median fresh/baseline ns ratio over matched rows,
// floored at 1 (a faster runner keeps the raw gate — everything sits
// below threshold anyway unless genuinely regressed). Rows exempted from
// the ns gate (nsSkip) are excluded: they run multi-threaded, so their
// ratio tracks core count, not the single-thread speed the factor models.
func machineFactor(baseline map[string]row, fresh []row, nsSkip *regexp.Regexp) float64 {
	var ratios []float64
	for _, f := range fresh {
		if nsSkip != nil && nsSkip.MatchString(f.key()) {
			continue
		}
		if b, ok := baseline[f.key()]; ok && b.NsPerOp > 0 && f.NsPerOp > 0 {
			ratios = append(ratios, f.NsPerOp/b.NsPerOp)
		}
	}
	if len(ratios) < minRowsForCalibration {
		return 1
	}
	sort.Float64s(ratios)
	mid := len(ratios) / 2
	median := ratios[mid]
	if len(ratios)%2 == 0 {
		median = (ratios[mid-1] + ratios[mid]) / 2
	}
	if median < 1 {
		return 1
	}
	return median
}

// gate compares fresh rows against the baseline and returns one message
// per regression plus how many rows matched. calibrate enables the
// median-ratio machine-speed correction on the ns check (see the package
// comment). Rows whose key matches nsSkip are held to the (machine-
// independent) allocation gate only: multi-threaded benchmarks scale
// with the runner's core count, which neither the raw ns comparison nor
// the single-thread calibration factor models.
func gate(baseline, fresh []row, maxNsRatio, maxAllocsRatio float64, calibrate bool, nsSkip *regexp.Regexp) (regressions []string, matched int) {
	base := make(map[string]row, len(baseline))
	for _, b := range baseline {
		base[b.key()] = b
	}
	factor := 1.0
	if calibrate {
		factor = machineFactor(base, fresh, nsSkip)
	}
	for _, f := range fresh {
		b, ok := base[f.key()]
		if !ok {
			continue
		}
		matched++
		nsGated := nsSkip == nil || !nsSkip.MatchString(f.key())
		if limit := b.NsPerOp * maxNsRatio * factor; nsGated && b.NsPerOp > 0 && f.NsPerOp > limit {
			regressions = append(regressions, fmt.Sprintf(
				"%s: ns_per_op %.0f exceeds baseline %.0f by %.1f%% (limit %.0f%%, machine factor %.2f)",
				f.key(), f.NsPerOp, b.NsPerOp, 100*(f.NsPerOp/b.NsPerOp-1), 100*(maxNsRatio-1), factor))
		}
		if b.AllocsPerOp != nil && f.AllocsPerOp != nil && *b.AllocsPerOp > 0 &&
			*f.AllocsPerOp > *b.AllocsPerOp*maxAllocsRatio {
			regressions = append(regressions, fmt.Sprintf(
				"%s: allocs_per_op %.0f exceeds baseline %.0f by %.1f%% (limit %.0f%%)",
				f.key(), *f.AllocsPerOp, *b.AllocsPerOp, 100*(*f.AllocsPerOp / *b.AllocsPerOp - 1), 100*(maxAllocsRatio-1)))
		}
	}
	return regressions, matched
}

func run(baselinePath, baselineRun, freshPath string, maxNsRatio, maxAllocsRatio float64, calibrate bool, nsSkipPat string) error {
	baseline, err := loadRows(baselinePath, baselineRun)
	if err != nil {
		return err
	}
	fresh, err := loadRows(freshPath, "")
	if err != nil {
		return err
	}
	var nsSkip *regexp.Regexp
	if nsSkipPat != "" {
		if nsSkip, err = regexp.Compile(nsSkipPat); err != nil {
			return fmt.Errorf("bad -ns-skip pattern: %w", err)
		}
	}
	regressions, matched := gate(baseline, fresh, maxNsRatio, maxAllocsRatio, calibrate, nsSkip)
	if matched == 0 {
		return fmt.Errorf("no fresh row matched the baseline — benchmark names drifted?")
	}
	fmt.Printf("benchgate: %d rows compared against %s", matched, baselinePath)
	if baselineRun != "" {
		fmt.Printf(" (run %s)", baselineRun)
	}
	fmt.Println()
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Println("REGRESSION:", r)
		}
		return fmt.Errorf("%d benchmark regression(s)", len(regressions))
	}
	fmt.Println("benchgate: no regressions")
	return nil
}

func main() {
	var (
		baseline    = flag.String("baseline", "BENCH_query.json", "committed baseline (flat rows or curated runs map)")
		baselineRun = flag.String("baseline-run", "", "run name inside a curated baseline")
		fresh       = flag.String("fresh", "bench-artifacts/BENCH_query.json", "fresh benchmark rows (cmd/benchjson output)")
		nsRatio     = flag.Float64("max-ns-ratio", 1.25, "fail when ns_per_op exceeds baseline times this")
		allocsRatio = flag.Float64("max-allocs-ratio", 1.10, "fail when allocs_per_op exceeds baseline times this")
		noCal       = flag.Bool("no-ns-calibrate", false, "compare raw wall-clock instead of machine-drift-corrected ns")
		nsSkip      = flag.String("ns-skip", "", "regex of row keys exempt from the ns gate (allocs still gated); use for multi-threaded benchmarks whose speed tracks core count")
	)
	flag.Parse()
	if err := run(*baseline, *baselineRun, *fresh, *nsRatio, *allocsRatio, !*noCal, *nsSkip); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}
