package main

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func f(v float64) *float64 { return &v }

func baselineRows() []row {
	return []row{
		{Name: "BenchmarkQuerySingle/LAZY", Strategy: "LAZY", NsPerOp: 1000000, AllocsPerOp: f(300)},
		{Name: "BenchmarkQuerySingle/INDEXEST", Strategy: "INDEXEST", NsPerOp: 500000, AllocsPerOp: f(100)},
		{Name: "BenchmarkServe/cached", NsPerOp: 100, AllocsPerOp: f(0)},
	}
}

// TestGatePassesWithinTolerance: mild drift below the thresholds passes.
func TestGatePassesWithinTolerance(t *testing.T) {
	fresh := []row{
		{Name: "BenchmarkQuerySingle/LAZY-4", Strategy: "LAZY", NsPerOp: 1200000, AllocsPerOp: f(320)},
		{Name: "BenchmarkQuerySingle/INDEXEST-4", Strategy: "INDEXEST", NsPerOp: 400000, AllocsPerOp: f(100)},
	}
	regressions, matched := gate(baselineRows(), fresh, 1.25, 1.10, false, nil)
	if matched != 2 {
		t.Fatalf("matched = %d, want 2", matched)
	}
	if len(regressions) != 0 {
		t.Fatalf("unexpected regressions: %v", regressions)
	}
}

// TestGateFailsOnFabricatedSlowResult is the acceptance-criterion probe:
// a synthetic 2x slowdown and a 20% alloc growth must both trip.
func TestGateFailsOnFabricatedSlowResult(t *testing.T) {
	fresh := []row{
		{Name: "BenchmarkQuerySingle/LAZY-4", Strategy: "LAZY", NsPerOp: 2000000, AllocsPerOp: f(300)},
		{Name: "BenchmarkQuerySingle/INDEXEST-4", Strategy: "INDEXEST", NsPerOp: 500000, AllocsPerOp: f(120)},
	}
	regressions, matched := gate(baselineRows(), fresh, 1.25, 1.10, false, nil)
	if matched != 2 {
		t.Fatalf("matched = %d, want 2", matched)
	}
	if len(regressions) != 2 {
		t.Fatalf("regressions = %v, want one ns and one allocs failure", regressions)
	}
	if !strings.Contains(regressions[0], "ns_per_op") || !strings.Contains(regressions[1], "allocs_per_op") {
		t.Fatalf("unexpected regression messages: %v", regressions)
	}
}

// TestGateMatchesByStrategyAcrossProcSuffixes: baseline rows without a
// strategy still match on the proc-stripped name.
func TestGateMatchesByStrategyAcrossProcSuffixes(t *testing.T) {
	fresh := []row{{Name: "BenchmarkServe/cached-8", NsPerOp: 90, AllocsPerOp: f(0)}}
	regressions, matched := gate(baselineRows(), fresh, 1.25, 1.10, false, nil)
	if matched != 1 || len(regressions) != 0 {
		t.Fatalf("matched %d, regressions %v", matched, regressions)
	}
}

// TestRunAgainstCuratedBaseline: end-to-end against the committed
// runs-map format, including the run-selection error path and the
// no-match failure.
func TestRunAgainstCuratedBaseline(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "BENCH_query.json")
	curated := `{
  "benchmark": "go test -bench ...",
  "runs": {
    "older": {"results": [{"name": "BenchmarkQuerySingle/LAZY", "strategy": "LAZY", "ns_per_op": 9000000, "allocs_per_op": 400}]},
    "newer": {"results": [{"name": "BenchmarkQuerySingle/LAZY", "strategy": "LAZY", "ns_per_op": 1000000, "allocs_per_op": 300}]}
  }
}`
	if err := os.WriteFile(baseline, []byte(curated), 0o644); err != nil {
		t.Fatal(err)
	}
	fresh := filepath.Join(dir, "fresh.json")
	if err := os.WriteFile(fresh, []byte(`[{"name": "BenchmarkQuerySingle/LAZY-4", "strategy": "LAZY", "ns_per_op": 1100000, "allocs_per_op": 310}]`), 0o644); err != nil {
		t.Fatal(err)
	}

	if err := run(baseline, "newer", fresh, 1.25, 1.10, false, ""); err != nil {
		t.Fatalf("gate against curated run failed: %v", err)
	}
	// 1.1ms vs the "older" 9ms baseline passes trivially; vs "newer" with a
	// tightened ns ratio it must fail.
	if err := run(baseline, "newer", fresh, 1.05, 1.10, false, ""); err == nil {
		t.Fatal("tightened gate did not fail")
	}
	if err := run(baseline, "", fresh, 1.25, 1.10, false, ""); err == nil || !strings.Contains(err.Error(), "-baseline-run") {
		t.Fatalf("missing -baseline-run not diagnosed: %v", err)
	}
	if err := run(baseline, "bogus", fresh, 1.25, 1.10, false, ""); err == nil {
		t.Fatal("unknown run accepted")
	}

	// A fresh file sharing no rows with the baseline must fail loudly.
	disjoint := filepath.Join(dir, "disjoint.json")
	if err := os.WriteFile(disjoint, []byte(`[{"name": "BenchmarkOther-4", "ns_per_op": 1}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(baseline, "newer", disjoint, 1.25, 1.10, false, ""); err == nil {
		t.Fatal("disjoint comparison passed")
	}
}

// TestGateCalibratesMachineDrift: a uniformly slower machine must not
// trip the ns gate, while a strategy regressing relative to its peers
// must — and a fabricated slowdown still fails even under calibration.
func TestGateCalibratesMachineDrift(t *testing.T) {
	var baseline, uniform, skewed []row
	for i, strat := range []string{"A", "B", "C", "D", "E"} {
		ns := float64(1000000 * (i + 1))
		baseline = append(baseline, row{Name: "BenchmarkQuerySingle/" + strat, Strategy: strat, NsPerOp: ns})
		uniform = append(uniform, row{Name: "BenchmarkQuerySingle/" + strat + "-4", Strategy: strat, NsPerOp: 2 * ns})
		factor := 2.0
		if strat == "C" {
			factor = 3.2 // regressed ~60% beyond the shared drift
		}
		skewed = append(skewed, row{Name: "BenchmarkQuerySingle/" + strat + "-4", Strategy: strat, NsPerOp: factor * ns})
	}
	if regressions, _ := gate(baseline, uniform, 1.25, 1.10, true, nil); len(regressions) != 0 {
		t.Fatalf("uniform 2x machine drift tripped the calibrated gate: %v", regressions)
	}
	if regressions, _ := gate(baseline, uniform, 1.25, 1.10, false, nil); len(regressions) != 5 {
		t.Fatalf("raw gate should flag all 5 uniform-drift rows, got %v", regressions)
	}
	regressions, _ := gate(baseline, skewed, 1.25, 1.10, true, nil)
	if len(regressions) != 1 || !strings.Contains(regressions[0], "C:") {
		t.Fatalf("calibrated gate missed the relative regression: %v", regressions)
	}
	// Fewer than minRowsForCalibration matched rows: no calibration.
	if regressions, _ := gate(baseline[:2], uniform[:2], 1.25, 1.10, true, nil); len(regressions) != 2 {
		t.Fatalf("small-sample gate should stay raw, got %v", regressions)
	}
}

// TestGateNsSkip: rows matching -ns-skip (multi-threaded benchmarks whose
// wall-clock tracks core count) are exempt from the ns gate — and from
// the calibration median — but still held to the allocation gate.
func TestGateNsSkip(t *testing.T) {
	baseline := []row{
		{Strategy: "A", NsPerOp: 1e6, AllocsPerOp: f(100)},
		{Strategy: "Sweep/A-W4", NsPerOp: 1e8, AllocsPerOp: f(5000)},
	}
	fresh := []row{
		{Strategy: "A", NsPerOp: 1e6, AllocsPerOp: f(100)},
		// 3x slower wall-clock (fewer cores on the runner), allocs equal.
		{Strategy: "Sweep/A-W4", NsPerOp: 3e8, AllocsPerOp: f(5000)},
	}
	skip := regexp.MustCompile(`^Sweep/`)
	if regressions, matched := gate(baseline, fresh, 1.25, 1.10, false, skip); len(regressions) != 0 || matched != 2 {
		t.Fatalf("ns-skipped core-count slowdown tripped the gate: %v (matched %d)", regressions, matched)
	}
	// Without the skip it trips, proving the exemption is what saved it.
	if regressions, _ := gate(baseline, fresh, 1.25, 1.10, false, nil); len(regressions) != 1 {
		t.Fatalf("unskipped slowdown should trip: %v", regressions)
	}
	// Allocation regressions in skipped rows still gate.
	fresh[1].AllocsPerOp = f(9000)
	if regressions, _ := gate(baseline, fresh, 1.25, 1.10, false, skip); len(regressions) != 1 ||
		!strings.Contains(regressions[0], "allocs_per_op") {
		t.Fatalf("alloc regression in a ns-skipped row missed: %v", regressions)
	}
}
