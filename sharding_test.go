package pitex

import (
	"bytes"
	"sync"
	"testing"
)

// shardedTestOptions is testEngineOptions with the sharded index layout.
func shardedTestOptions(s Strategy, shards int) Options {
	opts := testEngineOptions(s)
	opts.IndexShards = shards
	return opts
}

// TestShardedEngineFindsFig2Optimum: all index strategies must still find
// the known Fig. 2 optimum when the offline structure is split into more
// shards than the statistics comfortably like — the gathered estimate
// stays unbiased at any S.
func TestShardedEngineFindsFig2Optimum(t *testing.T) {
	net, model := fig2Network(t)
	for _, s := range []Strategy{StrategyIndex, StrategyIndexPruned, StrategyDelay} {
		en, err := NewEngine(net, model, shardedTestOptions(s, 4))
		if err != nil {
			t.Fatalf("%v: NewEngine: %v", s, err)
		}
		res, err := en.Query(0, 2)
		if err != nil {
			t.Fatalf("%v: Query: %v", s, err)
		}
		if len(res.Tags) != 2 || res.Tags[0] != 2 || res.Tags[1] != 3 {
			t.Errorf("%v: sharded query found %v, want [2 3]", s, res.Tags)
		}
		stats := en.IndexShardStats()
		if len(stats) != 4 {
			t.Fatalf("%v: IndexShardStats rows = %d, want 4", s, len(stats))
		}
		var bytesSum int64
		users := 0
		for _, st := range stats {
			bytesSum += st.IndexBytes
			users += st.Users
		}
		if bytesSum != en.IndexMemoryBytes() {
			t.Errorf("%v: per-shard bytes %d != IndexMemoryBytes %d", s, bytesSum, en.IndexMemoryBytes())
		}
		if users != net.NumUsers() {
			t.Errorf("%v: shard user partitions cover %d users, want %d", s, users, net.NumUsers())
		}
	}
}

// TestShardedEngineSaveLoadRoundTrip: the v3 format round-trips the shard
// layout through SaveIndex / NewEngineWithIndex with identical answers.
func TestShardedEngineSaveLoadRoundTrip(t *testing.T) {
	net, model := fig2Network(t)
	for _, s := range []Strategy{StrategyIndexPruned, StrategyDelay} {
		en, err := NewEngine(net, model, shardedTestOptions(s, 3))
		if err != nil {
			t.Fatalf("%v: NewEngine: %v", s, err)
		}
		var buf bytes.Buffer
		if err := en.SaveIndex(&buf); err != nil {
			t.Fatalf("%v: SaveIndex: %v", s, err)
		}
		loaded, err := NewEngineWithIndex(net, model, shardedTestOptions(s, 3), &buf)
		if err != nil {
			t.Fatalf("%v: NewEngineWithIndex: %v", s, err)
		}
		if got := len(loaded.IndexShardStats()); got != 3 {
			t.Fatalf("%v: loaded engine has %d shards, want 3", s, got)
		}
		want, err := en.Query(0, 2)
		if err != nil {
			t.Fatalf("%v: Query: %v", s, err)
		}
		got, err := loaded.Query(0, 2)
		if err != nil {
			t.Fatalf("%v: loaded Query: %v", s, err)
		}
		if got.Influence != want.Influence && s != StrategyDelay {
			// DelayMat recovery draws fresh RNG per estimator, so only the
			// materialized index pins bit-equal influences across a reload.
			t.Errorf("%v: loaded influence %v != original %v", s, got.Influence, want.Influence)
		}
		if len(got.Tags) != 2 || got.Tags[0] != want.Tags[0] || got.Tags[1] != want.Tags[1] {
			t.Errorf("%v: loaded tags %v != original %v", s, got.Tags, want.Tags)
		}
	}
}

// TestShardedEngineApplyUpdates: incremental repair under the sharded
// layout stays incremental, advances the generation, and accumulates
// per-shard repair counters that agree with the reported stats.
func TestShardedEngineApplyUpdates(t *testing.T) {
	net, model, err := GenerateDatasetSpec(DatasetSpec{
		Name: "shardtest", Users: 400, Edges: 2400,
		Topics: 8, Tags: 20, TopicsPerEdge: 2, MaxProb: 0.3, Reciprocity: 0.2,
	}, 1)
	if err != nil {
		t.Fatalf("GenerateDatasetSpec: %v", err)
	}
	opts := Options{
		Strategy: StrategyIndexPruned, Epsilon: 0.5, Delta: 100, MaxK: 4,
		Seed: 3, MaxSamples: 500, MaxIndexSamples: 4000, IndexShards: 4,
		CheapBounds: true,
	}
	en, err := NewEngine(net, model, opts)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	before := en.IndexShardStats()

	var b UpdateBatch
	b.SetEdge(0, firstOutNeighbor(t, net, 0), TopicProb{Topic: 0, Prob: 0.9})
	next, stats, err := en.ApplyUpdates(&b)
	if err != nil {
		t.Fatalf("ApplyUpdates: %v", err)
	}
	if next.Generation() != 1 || stats.FullRebuild {
		t.Fatalf("unexpected stats %+v", stats)
	}
	if stats.GraphsRepaired == 0 || stats.GraphsRepaired >= stats.GraphsTotal {
		t.Fatalf("repair not incremental: %d of %d", stats.GraphsRepaired, stats.GraphsTotal)
	}
	after := next.IndexShardStats()
	var delta int64
	for s := range after {
		delta += after[s].GraphsRepaired - before[s].GraphsRepaired
	}
	if delta != int64(stats.GraphsRepaired+stats.GraphsAppended) {
		t.Fatalf("per-shard repaired delta %d != stats %d", delta, stats.GraphsRepaired+stats.GraphsAppended)
	}
	if _, err := next.Query(0, 2); err != nil {
		t.Fatalf("Query after sharded repair: %v", err)
	}
}

// firstOutNeighbor returns a user that user `from` has a live edge to.
func firstOutNeighbor(t *testing.T, net *Network, from int) int {
	t.Helper()
	to := -1
	net.ForEachEdge(func(e Edge) bool {
		if e.From == from {
			to = e.To
			return false
		}
		return true
	})
	if to < 0 {
		t.Fatalf("user %d has no out-edges", from)
	}
	return to
}

// TestShardedConcurrentQueryAndUpdate is the -race scatter-gather stress
// test: engine clones answer queries (each estimation fanning out across
// shard workers) while update batches repair the sharded index in
// parallel on other goroutines. Old-generation clones must keep
// answering; nothing may race.
func TestShardedConcurrentQueryAndUpdate(t *testing.T) {
	net, model, err := GenerateDatasetSpec(DatasetSpec{
		Name: "shardrace", Users: 400, Edges: 3200,
		Topics: 10, Tags: 24, TopicsPerEdge: 2, MaxProb: 0.4, Reciprocity: 0.3,
	}, 2)
	if err != nil {
		t.Fatalf("GenerateDatasetSpec: %v", err)
	}
	opts := Options{
		Strategy: StrategyIndex, Epsilon: 0.5, Delta: 100, MaxK: 4,
		Seed: 5, MaxSamples: 300, MaxIndexSamples: 6000, IndexShards: 4,
		CheapBounds: true,
	}
	en, err := NewEngine(net, model, opts)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}

	const workers = 4
	var wg sync.WaitGroup
	errc := make(chan error, workers+1)
	for w := 0; w < workers; w++ {
		clone := en.Clone()
		user := (w * 37) % net.NumUsers()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				if _, err := clone.Query(user, 2); err != nil {
					errc <- err
					return
				}
			}
		}()
	}
	type edge struct{ from, to int }
	batches := make([]edge, 3)
	for gen := range batches {
		from := (gen * 53) % net.NumUsers()
		batches[gen] = edge{from: from, to: firstOutNeighbor(t, net, from)}
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		cur := en
		for _, e := range batches {
			var b UpdateBatch
			b.SetEdge(e.from, e.to, TopicProb{Topic: 0, Prob: 0.8})
			next, _, err := cur.ApplyUpdates(&b)
			if err != nil {
				errc <- err
				return
			}
			if _, err := next.Query(e.from, 2); err != nil {
				errc <- err
				return
			}
			cur = next
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatalf("concurrent sharded workload failed: %v", err)
	}
}
