package pitex

// Regression tests for the correctness fixes to Audience cascade seeding,
// constrained-query validation and batch-query cancellation.

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
)

// TestAudienceStreamsDecorrelated pins the fix for the fixed-seed Audience
// cascade bug: every call used to draw from rng.New(Seed+104729), so two
// different tag sets with the same posterior produced byte-identical
// cascades (and repeated calls could never average error down). Tags w3
// and w4 of the Fig. 2 model share one topic row, so their posteriors are
// equal — the cascade stream is the only thing that can differ.
func TestAudienceStreamsDecorrelated(t *testing.T) {
	net, model := fig2Network(t)
	en, err := NewEngine(net, model, testEngineOptions(StrategyLazy))
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	a, err := en.Audience(0, []int{2}, 10, 2000)
	if err != nil {
		t.Fatalf("Audience({w3}): %v", err)
	}
	b, err := en.Audience(0, []int{3}, 10, 2000)
	if err != nil {
		t.Fatalf("Audience({w4}): %v", err)
	}
	if reflect.DeepEqual(a, b) {
		t.Fatalf("tag sets {w3} and {w4} share cascade randomness: both = %+v", a)
	}
	// Different sample budgets must also draw distinct streams (the old
	// seeding made a 2000-sample call a prefix-extension of a 1000-sample
	// one, correlating their errors).
	c, err := en.Audience(0, []int{2}, 10, 2001)
	if err != nil {
		t.Fatalf("Audience(2001 samples): %v", err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("sample budgets 2000 and 2001 share cascade randomness")
	}
}

// TestAudienceDeterministicPerArguments: equal argument tuples must keep
// producing identical profiles (callers and the serve cache rely on it),
// including across the tag-order permutations that serve's TagsKey
// canonicalizes into one cache key.
func TestAudienceDeterministicPerArguments(t *testing.T) {
	net, model := fig2Network(t)
	en, err := NewEngine(net, model, testEngineOptions(StrategyLazy))
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	a1, err := en.Audience(0, []int{2, 3}, 10, 2000)
	if err != nil {
		t.Fatalf("Audience: %v", err)
	}
	a2, err := en.Audience(0, []int{2, 3}, 10, 2000)
	if err != nil {
		t.Fatalf("Audience (repeat): %v", err)
	}
	if !reflect.DeepEqual(a1, a2) {
		t.Fatalf("repeated call diverged:\n%+v\n%+v", a1, a2)
	}
	// The stream is keyed to the tag SET: permuted arguments give the
	// same profile, matching the posterior and the serve cache key.
	a3, err := en.Audience(0, []int{3, 2}, 10, 2000)
	if err != nil {
		t.Fatalf("Audience (permuted): %v", err)
	}
	if !reflect.DeepEqual(a1, a3) {
		t.Fatalf("tag order changed the profile:\n%+v\n%+v", a1, a3)
	}
	// A clone answers identically (fresh scratch, same derivation).
	a4, err := en.Clone().Audience(0, []int{2, 3}, 10, 2000)
	if err != nil {
		t.Fatalf("clone Audience: %v", err)
	}
	if !reflect.DeepEqual(a1, a4) {
		t.Fatalf("clone diverged:\n%+v\n%+v", a1, a4)
	}
}

func TestQueryWithPrefixValidation(t *testing.T) {
	net, model := fig2Network(t)
	en, err := NewEngine(net, model, testEngineOptions(StrategyLazy))
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	cases := []struct {
		name    string
		prefix  []int
		k       int
		wantErr string // empty = must succeed
	}{
		{"valid single", []int{2}, 2, ""},
		{"valid full-size", []int{2, 3}, 2, ""},
		{"duplicate tag", []int{1, 1}, 3, "duplicate prefix tag"},
		{"duplicate later", []int{0, 2, 0}, 4, "duplicate prefix tag"},
		{"oversized", []int{0, 1, 2}, 2, "exceeds k"},
		{"tag out of range", []int{9}, 2, "outside [0,4)"},
		{"negative tag", []int{-1}, 2, "outside [0,4)"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := en.QueryWithPrefix(0, tc.prefix, tc.k)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("QueryWithPrefix(%v, k=%d): %v", tc.prefix, tc.k, err)
				}
				if len(res.Tags) != tc.k {
					t.Fatalf("result size %d, want %d", len(res.Tags), tc.k)
				}
				for _, w := range tc.prefix {
					found := false
					for _, got := range res.Tags {
						if got == w {
							found = true
						}
					}
					if !found {
						t.Fatalf("prefix tag %d missing from %v", w, res.Tags)
					}
				}
				return
			}
			if err == nil {
				t.Fatalf("QueryWithPrefix(%v, k=%d) accepted, want error containing %q",
					tc.prefix, tc.k, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error = %q, want it to contain %q", err, tc.wantErr)
			}
			if !strings.HasPrefix(err.Error(), "pitex:") {
				t.Fatalf("error %q does not carry the public pitex: prefix", err)
			}
		})
	}
}

func TestQueryAllCtxCancellation(t *testing.T) {
	net, model := fig2Network(t)
	en, err := NewEngine(net, model, testEngineOptions(StrategyIndexPruned))
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	users := []int{0, 1, 2, 3, 4, 5, 6}

	// A live context behaves exactly like QueryAll.
	got := en.QueryAllCtx(context.Background(), users, 2, 3)
	want := en.QueryAll(users, 2, 3)
	for i := range got {
		if got[i].User != want[i].User || (got[i].Err == nil) != (want[i].Err == nil) {
			t.Fatalf("row %d: ctx %+v vs plain %+v", i, got[i], want[i])
		}
	}

	// A context dead before dispatch must mark every user undone with
	// ctx.Err() — and return (the workers drain, nothing leaks; the race
	// detector and test timeout enforce that).
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results := en.QueryAllCtx(ctx, users, 2, 3)
	if len(results) != len(users) {
		t.Fatalf("got %d results, want %d", len(results), len(users))
	}
	for i, r := range results {
		if r.User != users[i] {
			t.Fatalf("row %d out of order: %d", i, r.User)
		}
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("row %d: err = %v, want context.Canceled", i, r.Err)
		}
	}

	// Cancelling mid-batch: the first row's completion triggers the
	// cancellation, later rows must report ctx.Err() instead of running.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	firstDone := false
	out := RunBatchCtx(ctx2, users, 1, func() BatchQueryFunc {
		clone := en.Clone()
		return func(ctx context.Context, user int) (Result, error) {
			res, err := clone.QueryCtx(ctx, user, 2)
			if !firstDone {
				firstDone = true
				cancel2()
			}
			return res, err
		}
	})
	if out[0].Err != nil {
		t.Fatalf("first row failed: %v", out[0].Err)
	}
	last := out[len(out)-1]
	if !errors.Is(last.Err, context.Canceled) {
		t.Fatalf("last row after cancellation: err = %v, want context.Canceled", last.Err)
	}
}
