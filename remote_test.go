package pitex

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"

	"pitex/internal/graph"
	"pitex/internal/rrindex"
)

// fakeRemote answers RemoteEstimate from in-process shard slices — the
// transportless reference implementation of the distrib client, built
// from the same BuildShard/GatherPartials primitives the real shard
// servers use.
type fakeRemote struct {
	g      *graph.Graph
	pruned bool
	shards []*rrindex.Index
	users  []int
	theta  int64
	total  int
	drop   map[int]bool
	err    error
	calls  int
}

func newFakeRemote(t *testing.T, net *Network, model *TagModel, opts Options, S int) *fakeRemote {
	t.Helper()
	bo, err := IndexBuildOptions(model, opts)
	if err != nil {
		t.Fatalf("IndexBuildOptions: %v", err)
	}
	f := &fakeRemote{
		g:      net.Graph(),
		pruned: opts.Strategy == StrategyIndexPruned,
		total:  net.NumUsers(),
	}
	for s := 0; s < S; s++ {
		idx, users, err := rrindex.BuildShard(net.Graph(), bo, S, s)
		if err != nil {
			t.Fatalf("BuildShard(%d): %v", s, err)
		}
		f.shards = append(f.shards, idx)
		f.users = append(f.users, users)
		f.theta += idx.Theta()
	}
	return f
}

func (f *fakeRemote) EstimateRemote(_ context.Context, user int, probe RemoteProbe) (RemoteEstimate, error) {
	f.calls++
	if f.err != nil {
		return RemoteEstimate{}, f.err
	}
	prober, err := probe.Prober(f.g)
	if err != nil {
		return RemoteEstimate{}, err
	}
	var partials []rrindex.Partial
	var missing []int
	for s, idx := range f.shards {
		if f.drop[s] {
			missing = append(missing, s)
			continue
		}
		var p rrindex.Partial
		if f.pruned {
			p = rrindex.NewPrunedEstimator(idx).Partial(s, f.users[s], graph.VertexID(user), prober)
		} else {
			p = rrindex.NewEstimator(idx).Partial(s, f.users[s], graph.VertexID(user), prober)
		}
		partials = append(partials, p)
	}
	if len(missing) == 0 {
		r := rrindex.GatherPartials(partials)
		return RemoteEstimate{
			Influence: r.Influence, Samples: r.Samples, Theta: r.Theta, Reachable: r.Reachable,
			RespondingTheta: r.Theta, TotalTheta: r.Theta,
		}, nil
	}
	r := rrindex.GatherPartialsDegraded(partials, f.total)
	return RemoteEstimate{
		Influence: r.Influence, Samples: r.Samples, Theta: r.Theta, Reachable: r.Reachable,
		MissingShards: missing, RespondingTheta: r.Theta, TotalTheta: f.theta,
	}, nil
}

// TestRemoteEngineMatchesLocal pins the tentpole invariant at the engine
// layer: with every shard responding, a remote engine's answers are
// byte-identical to the in-process sharded engine at the same seeds —
// for both remotable strategies, so both prober wire forms (posterior
// and best-first bound) cross the seam.
func TestRemoteEngineMatchesLocal(t *testing.T) {
	net, model := fig2Network(t)
	for _, s := range []Strategy{StrategyIndex, StrategyIndexPruned} {
		opts := testEngineOptions(s)
		opts.IndexShards = 3
		local, err := NewEngine(net, model, opts)
		if err != nil {
			t.Fatalf("%v: NewEngine: %v", s, err)
		}
		fake := newFakeRemote(t, net, model, opts, 3)
		remote, err := NewRemoteEngine(net, model, opts, fake)
		if err != nil {
			t.Fatalf("%v: NewRemoteEngine: %v", s, err)
		}
		for u := 0; u < net.NumUsers(); u++ {
			lres, err := local.Query(u, 2)
			if err != nil {
				t.Fatalf("%v: local Query(%d): %v", s, u, err)
			}
			rres, err := remote.Query(u, 2)
			if err != nil {
				t.Fatalf("%v: remote Query(%d): %v", s, u, err)
			}
			if rres.Influence != lres.Influence || !reflect.DeepEqual(rres.Tags, lres.Tags) {
				t.Errorf("%v: user %d: remote (%v, %v) != local (%v, %v)",
					s, u, rres.Tags, rres.Influence, lres.Tags, lres.Influence)
			}
			if rres.Degraded != nil {
				t.Errorf("%v: user %d: healthy query reported degraded %+v", s, u, rres.Degraded)
			}
		}
		if fake.calls == 0 {
			t.Fatalf("%v: no estimation reached the remote", s)
		}
	}
}

func TestRemoteEngineDegraded(t *testing.T) {
	net, model := fig2Network(t)
	opts := testEngineOptions(StrategyIndexPruned)
	opts.IndexShards = 3
	fake := newFakeRemote(t, net, model, opts, 3)
	fake.drop = map[int]bool{1: true}
	en, err := NewRemoteEngine(net, model, opts, fake)
	if err != nil {
		t.Fatalf("NewRemoteEngine: %v", err)
	}
	res, err := en.Query(0, 2)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	deg := res.Degraded
	if deg == nil {
		t.Fatal("one-shard-down query reported no degradation")
	}
	if !reflect.DeepEqual(deg.MissingShards, []int{1}) {
		t.Fatalf("MissingShards = %v, want [1]", deg.MissingShards)
	}
	if deg.TargetEpsilon != opts.Epsilon {
		t.Fatalf("TargetEpsilon = %v, want %v", deg.TargetEpsilon, opts.Epsilon)
	}
	if deg.RespondingTheta <= 0 || deg.RespondingTheta >= deg.TotalTheta {
		t.Fatalf("theta accounting: responding %d of total %d", deg.RespondingTheta, deg.TotalTheta)
	}
	want := opts.Epsilon * math.Sqrt(float64(deg.TotalTheta)/float64(deg.RespondingTheta))
	if deg.AchievedEpsilon != want {
		t.Fatalf("AchievedEpsilon = %v, want %v", deg.AchievedEpsilon, want)
	}
	if res.Influence < 1 {
		t.Fatalf("degraded influence %v below clamp", res.Influence)
	}
}

func TestRemoteEngineRemoteError(t *testing.T) {
	net, model := fig2Network(t)
	opts := testEngineOptions(StrategyIndex)
	opts.IndexShards = 2
	fake := newFakeRemote(t, net, model, opts, 2)
	fake.err = errors.New("fleet on fire")
	en, err := NewRemoteEngine(net, model, opts, fake)
	if err != nil {
		t.Fatalf("NewRemoteEngine: %v", err)
	}
	if _, err := en.Query(0, 2); err == nil || !errors.Is(err, fake.err) {
		t.Fatalf("Query error = %v, want the remote failure", err)
	}
}

func TestNewRemoteEngineValidation(t *testing.T) {
	net, model := fig2Network(t)
	opts := testEngineOptions(StrategyIndex)
	fake := newFakeRemote(t, net, model, opts, 1)
	if _, err := NewRemoteEngine(nil, model, opts, fake); err == nil {
		t.Error("nil network accepted")
	}
	if _, err := NewRemoteEngine(net, model, opts, nil); err == nil {
		t.Error("nil remote accepted")
	}
	if _, err := NewRemoteEngine(net, model, Options{Epsilon: 2}, fake); err == nil {
		t.Error("invalid options accepted")
	}
	for _, s := range []Strategy{StrategyLazy, StrategyMC, StrategyRR, StrategyTIM, StrategyDelay} {
		if _, err := NewRemoteEngine(net, model, testEngineOptions(s), fake); err == nil {
			t.Errorf("%v accepted for remote serving", s)
		}
	}
	other, err := NewTagModel(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRemoteEngine(net, other, opts, fake); err == nil {
		t.Error("topic-count mismatch accepted")
	}
}

func TestRemoteProbeValidateAndProber(t *testing.T) {
	net, _ := fig2Network(t)
	g := net.Graph()
	cases := []struct {
		name  string
		probe RemoteProbe
		ok    bool
	}{
		{"posterior", RemoteProbe{Posterior: []float64{0.2, 0.3, 0.5}}, true},
		{"bound", RemoteProbe{BoundSupported: []bool{true, false}, BoundWeights: []float64{0.5, 0}}, true},
		{"neither", RemoteProbe{}, false},
		{"both", RemoteProbe{Posterior: []float64{1}, BoundSupported: []bool{true}, BoundWeights: []float64{1}}, false},
		{"length mismatch", RemoteProbe{BoundSupported: []bool{true}, BoundWeights: []float64{0.5, 0.5}}, false},
	}
	for _, c := range cases {
		err := c.probe.Validate()
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate = %v, want ok=%v", c.name, err, c.ok)
		}
		prober, err := c.probe.Prober(g)
		if (err == nil) != c.ok {
			t.Errorf("%s: Prober err = %v, want ok=%v", c.name, err, c.ok)
		}
		if c.ok && prober == nil {
			t.Errorf("%s: nil prober", c.name)
		}
	}
}

func TestIndexBuildOptions(t *testing.T) {
	_, model := fig2Network(t)
	opts := testEngineOptions(StrategyIndexPruned)
	opts.TrackUpdates = true
	bo, err := IndexBuildOptions(model, opts)
	if err != nil {
		t.Fatalf("IndexBuildOptions: %v", err)
	}
	if bo.Seed != opts.Seed || bo.MaxIndexSamples != opts.MaxIndexSamples || !bo.TrackMembers {
		t.Fatalf("derived build options: %+v", bo)
	}
	if bo.Accuracy.Epsilon != opts.Epsilon || bo.Accuracy.Delta != opts.Delta {
		t.Fatalf("derived accuracy: %+v", bo.Accuracy)
	}
	if bo.Accuracy.LogSearchSpace <= 0 {
		t.Fatalf("LogSearchSpace = %v, want > 0", bo.Accuracy.LogSearchSpace)
	}
	if _, err := IndexBuildOptions(nil, opts); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := IndexBuildOptions(model, Options{Epsilon: -1}); err == nil {
		t.Error("invalid options accepted")
	}
}

func TestRepairSeed(t *testing.T) {
	if got := RepairSeed(11, 0); got != 11 {
		t.Fatalf("generation 0 seed = %d, want the base seed", got)
	}
	seen := map[uint64]bool{}
	for gen := uint64(0); gen < 8; gen++ {
		s := RepairSeed(11, gen)
		if seen[s] {
			t.Fatalf("seed collision at generation %d", gen)
		}
		seen[s] = true
	}
}
