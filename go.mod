module pitex

go 1.24
