package pitex

import (
	"context"
	"fmt"
	"io"
	"math"
	"slices"
	"sync"
	"time"

	"pitex/internal/bestfirst"
	"pitex/internal/enumerate"
	"pitex/internal/graph"
	"pitex/internal/rng"
	"pitex/internal/rrindex"
	"pitex/internal/sampling"
	"pitex/internal/tim"
	"pitex/internal/topics"
)

// ScoredTagSet is one ranked answer of a top-m query.
type ScoredTagSet struct {
	Tags      []int
	TagNames  []string
	Influence float64
}

// Result is the answer to a PITEX query.
type Result struct {
	// Tags is the size-k tag set maximizing the estimated influence,
	// sorted ascending.
	Tags []int
	// TagNames are the human-readable names of Tags.
	TagNames []string
	// Influence is the estimated expected influence spread E[I(u|W*)].
	Influence float64
	// Alternatives holds the m best tag sets of a QueryTop call in
	// descending influence order (Alternatives[0] repeats Tags); nil for
	// plain queries.
	Alternatives []ScoredTagSet
	// Elapsed is wall-clock query time.
	Elapsed time.Duration
	// Degraded is non-nil when a remote engine (see NewRemoteEngine)
	// answered with one or more index shards unreachable: the estimate
	// stands, extrapolated over the responding shards, at the weakened
	// accuracy it reports. Always nil for local engines.
	Degraded *DegradedCoverage
	// FullSetsEstimated, PartialBoundsEstimated, PrunedUnsupported and
	// PrunedByBound report the best-effort exploration work breakdown.
	FullSetsEstimated      int64
	PartialBoundsEstimated int64
	PrunedUnsupported      int64
	PrunedByBound          int64
	// Explain attributes the query's cost across the exploration and
	// estimation layers. Always populated (the counters it reads are
	// maintained unconditionally and cost single non-atomic increments);
	// serving layers decide whether to surface it.
	Explain Explain
}

// Explain is the per-query cost breakdown: what the best-first loop did
// (expansions, estimations, prunes) and what the estimator underneath
// spent doing it (samples, edge probes, cache behavior, RR-Graphs
// consulted). Estimator-level fields are zero for strategies that do not
// expose them.
type Explain struct {
	Strategy               string  `json:"strategy"`
	FullSetsEstimated      int64   `json:"full_sets_estimated"`
	PartialBoundsEstimated int64   `json:"partial_bounds_estimated"`
	PrunedUnsupported      int64   `json:"pruned_unsupported"`
	PrunedByBound          int64   `json:"pruned_by_bound"`
	FrontierExpansions     int64   `json:"frontier_expansions"`
	SamplesDrawn           int64   `json:"samples_drawn"`
	ProbesEvaluated        int64   `json:"probes_evaluated"`
	ProbeCacheHits         int64   `json:"probe_cache_hits"`
	ProbeCacheMisses       int64   `json:"probe_cache_misses"`
	ProbeCacheHitRatio     float64 `json:"probe_cache_hit_ratio"`
	GraphsChecked          int64   `json:"graphs_checked"`
	GraphsPruned           int64   `json:"graphs_pruned"`
	// EarlyStops counts frontier siblings whose sampling was terminated by
	// the sequential stopping rule; GraphsSkipped is the RR-Graph scans
	// those terminations avoided. Both are zero when stopping is disabled
	// or the strategy does not batch frontiers.
	EarlyStops    int64 `json:"early_stops"`
	GraphsSkipped int64 `json:"graphs_skipped"`
	// BoundCacheHits counts CheapBounds evaluations answered from the
	// explorer's live-topic-mask memo instead of a fresh reachability BFS.
	BoundCacheHits int64 `json:"bound_cache_hits"`
}

// Engine answers PITEX queries over one network and tag model with a fixed
// strategy. Index strategies build their offline structures inside
// NewEngine. An Engine is not safe for concurrent use (estimators carry
// scratch state); use Clone to serve queries from multiple goroutines over
// the shared index.
type Engine struct {
	net   *Network
	model *TagModel
	opts  Options

	est      bestfirst.Estimator
	explorer *bestfirst.Explorer

	// Shared offline structures (nil unless the strategy needs them).
	// Both are sharded containers; the default Options.IndexShards of 0
	// yields a single shard, which reproduces the monolithic structures
	// byte-for-byte.
	index *rrindex.ShardedIndex
	delay *rrindex.ShardedDelayMat

	// remote, when set, replaces the offline structures entirely: the
	// engine is a scatter-gather coordinator (see NewRemoteEngine) and
	// every estimation is delegated to shard servers.
	remote RemoteEstimator

	// IndexBuildTime records the offline phase duration (Table 3).
	IndexBuildTime time.Duration

	// generation counts applied update batches (see ApplyUpdates); clones
	// inherit it.
	generation uint64

	posterior []float64
	// probe is the query-scoped p(e|W) cache for Audience, whose cascade
	// sampling probes the same edges across up to thousands of cascades;
	// the index estimators carry their own.
	probe *sampling.ProbeCache
}

// NewEngine validates the inputs, runs any offline construction the
// strategy needs, and returns a query-ready engine.
func NewEngine(net *Network, model *TagModel, opts Options) (*Engine, error) {
	if net == nil || model == nil {
		return nil, fmt.Errorf("pitex: nil network or model")
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	if net.NumTopics() != model.NumTopics() {
		return nil, fmt.Errorf("pitex: network has %d topics, model has %d",
			net.NumTopics(), model.NumTopics())
	}
	if err := model.m.Validate(); err != nil {
		return nil, fmt.Errorf("pitex: %w", err)
	}

	en := &Engine{
		net:       net,
		model:     model,
		opts:      opts,
		posterior: make([]float64, model.NumTopics()),
		probe:     sampling.NewProbeCache(net.g.NumEdges()),
	}

	if opts.Strategy.NeedsIndex() {
		build := rrindex.BuildOptions{
			Accuracy:        en.samplingOptions(enumerate.LogPhiK(model.NumTags(), opts.MaxK)),
			MaxIndexSamples: opts.MaxIndexSamples,
			Seed:            opts.Seed,
			TrackMembers:    opts.TrackUpdates,
		}
		start := time.Now()
		var err error
		if opts.Strategy == StrategyDelay {
			en.delay, err = rrindex.BuildShardedDelayMat(net.g, build, opts.IndexShards)
		} else {
			en.index, err = rrindex.BuildSharded(net.g, build, opts.IndexShards)
		}
		if err != nil {
			return nil, err
		}
		en.IndexBuildTime = time.Since(start)
	}

	en.est = en.newEstimator()
	en.explorer = en.newExplorer()
	return en, nil
}

// newExplorer builds the best-first explorer over the engine's estimator,
// wiring the exploration options. Unless the early-stop ablation disables
// it, the explorer is armed with the sequential-stopping confidence budget
// ln δ + ln φ_MaxK + ln 2 — the same union-bound term that sizes θ
// (Eq. 12) — so stopping a frontier sibling early spends no failure
// probability beyond the existing (ε,δ) guarantee.
func (en *Engine) newExplorer() *bestfirst.Explorer {
	ex := bestfirst.NewExplorer(en.net.g, en.model.m, en.est)
	ex.CheapBounds = en.opts.CheapBounds
	if !en.opts.DisableEarlyStop {
		lss := enumerate.LogPhiK(en.model.NumTags(), en.opts.MaxK)
		if math.IsInf(lss, -1) {
			lss = 0
		}
		ex.StopLogInvDelta = math.Log(en.opts.Delta) + lss + math.Ln2
	}
	return ex
}

// samplingOptions assembles the shared accuracy parameters with the given
// log search-space size.
func (en *Engine) samplingOptions(logSearchSpace float64) sampling.Options {
	return sampling.Options{
		Epsilon:          en.opts.Epsilon,
		Delta:            en.opts.Delta,
		LogSearchSpace:   logSearchSpace,
		MaxSamples:       en.opts.MaxSamples,
		DisableEarlyStop: en.opts.DisableEarlyStop,
	}
}

// newEstimator instantiates the per-engine (non-shared) estimator state.
func (en *Engine) newEstimator() bestfirst.Estimator {
	if en.remote != nil {
		return &remoteAdapter{en: en, remote: en.remote}
	}
	// Best-effort exploration examines up to φ_k tag sets; the paper's
	// Eq. 12 uses ln φ_k in the union bound. We use ln φ_MaxK, valid for
	// every supported k.
	logSpace := enumerate.LogPhiK(en.model.NumTags(), en.opts.MaxK)
	so := en.samplingOptions(logSpace)
	r := rng.New(en.opts.Seed + 7919)
	if en.opts.Propagation == PropagationLT {
		if en.opts.Strategy == StrategyRR {
			return sampling.NewTriggeringRR(en.net.g, so, sampling.LTTriggering{}, r)
		}
		return sampling.NewLT(en.net.g, so, r)
	}
	switch en.opts.Strategy {
	case StrategyMC:
		return sampling.NewMC(en.net.g, so, r)
	case StrategyRR:
		return sampling.NewRR(en.net.g, so, r)
	case StrategyTIM:
		return tim.New(en.net.g, 0)
	case StrategyIndex:
		return rrindex.NewShardedEstimator(en.index)
	case StrategyIndexPruned:
		return rrindex.NewShardedPrunedEstimator(en.index)
	case StrategyDelay:
		return rrindex.NewShardedDelayEstimator(en.delay, r)
	default:
		return sampling.NewLazy(en.net.g, so, r)
	}
}

// Clone returns an engine sharing the receiver's network, model and offline
// index but owning fresh estimator scratch, so clones can serve queries
// concurrently.
func (en *Engine) Clone() *Engine {
	c := &Engine{
		net:            en.net,
		model:          en.model,
		opts:           en.opts,
		index:          en.index,
		delay:          en.delay,
		remote:         en.remote,
		IndexBuildTime: en.IndexBuildTime,
		generation:     en.generation,
		posterior:      make([]float64, en.model.NumTopics()),
		probe:          sampling.NewProbeCache(en.net.g.NumEdges()),
	}
	c.est = c.newEstimator()
	c.explorer = c.newExplorer()
	return c
}

// SaveIndex writes the engine's offline structure (RR-Graph index or
// DelayMat counters) so a later process can skip the offline phase via
// NewEngineWithIndex. It fails for online strategies, which have nothing
// to save.
func (en *Engine) SaveIndex(w io.Writer) error {
	switch {
	case en.index != nil:
		return rrindex.WriteSharded(w, en.index)
	case en.delay != nil:
		return rrindex.WriteShardedDelayMat(w, en.delay)
	default:
		return fmt.Errorf("pitex: strategy %v has no offline index to save", en.opts.Strategy)
	}
}

// NewEngineWithIndex is NewEngine for index strategies, loading the offline
// structure from r (written by SaveIndex over the same network) instead of
// re-sampling it.
func NewEngineWithIndex(net *Network, model *TagModel, opts Options, r io.Reader) (*Engine, error) {
	if net == nil || model == nil {
		return nil, fmt.Errorf("pitex: nil network or model")
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	if !opts.Strategy.NeedsIndex() {
		return nil, fmt.Errorf("pitex: strategy %v does not use an offline index", opts.Strategy)
	}
	if net.NumTopics() != model.NumTopics() {
		return nil, fmt.Errorf("pitex: network has %d topics, model has %d",
			net.NumTopics(), model.NumTopics())
	}
	if err := model.m.Validate(); err != nil {
		return nil, fmt.Errorf("pitex: %w", err)
	}
	en := &Engine{
		net:       net,
		model:     model,
		opts:      opts,
		posterior: make([]float64, model.NumTopics()),
		probe:     sampling.NewProbeCache(net.g.NumEdges()),
	}
	start := time.Now()
	var err error
	if opts.Strategy == StrategyDelay {
		en.delay, err = rrindex.ReadShardedDelayMat(r, net.g)
	} else {
		en.index, err = rrindex.ReadSharded(r, net.g)
	}
	if err != nil {
		return nil, err
	}
	en.IndexBuildTime = time.Since(start)
	en.est = en.newEstimator()
	en.explorer = en.newExplorer()
	return en, nil
}

// IndexMemoryBytes returns the offline index's estimated size (0 for
// online strategies) — the Table 3 metric.
func (en *Engine) IndexMemoryBytes() int64 {
	switch {
	case en.index != nil:
		return en.index.MemoryFootprint()
	case en.delay != nil:
		return en.delay.MemoryFootprint()
	default:
		return 0
	}
}

// IndexShardStat describes one shard of the offline index: its user
// partition size, sample count, footprint, and the cumulative number of
// RR-Graphs incremental repairs have re-sampled in it across update
// generations. Exported by serve's /statsz as index_shards.
type IndexShardStat struct {
	Shard          int   `json:"shard"`
	Users          int   `json:"users"`
	Theta          int64 `json:"theta"`
	Graphs         int   `json:"graphs"`
	IndexBytes     int64 `json:"index_bytes"`
	GraphsRepaired int64 `json:"graphs_repaired"`
}

// IndexShardStats snapshots the offline index's per-shard layout, or nil
// for online strategies. Single-shard (monolithic) engines report one row.
func (en *Engine) IndexShardStats() []IndexShardStat {
	var stats []rrindex.ShardStat
	switch {
	case en.index != nil:
		stats = en.index.ShardStats()
	case en.delay != nil:
		stats = en.delay.ShardStats()
	default:
		return nil
	}
	out := make([]IndexShardStat, len(stats))
	for i, s := range stats {
		out[i] = IndexShardStat{
			Shard:          s.Shard,
			Users:          s.Users,
			Theta:          s.Theta,
			Graphs:         s.Graphs,
			IndexBytes:     s.Bytes,
			GraphsRepaired: s.Repaired,
		}
	}
	return out
}

// Strategy returns the estimation strategy the engine was built with.
func (en *Engine) Strategy() Strategy { return en.opts.Strategy }

// Options returns the engine's effective options (defaults applied).
// Layers above the engine — the analytics sweep fingerprint, serving
// diagnostics — read the seed and accuracy parameters from here instead
// of carrying their own copies.
func (en *Engine) Options() Options { return en.opts }

// Network returns the (immutable) network this engine generation answers
// over. After ApplyUpdates, the new engine returns the updated network.
func (en *Engine) Network() *Network { return en.net }

// Model returns the tag model the engine was built with.
func (en *Engine) Model() *TagModel { return en.model }

// Query answers the PITEX query (user, k): the size-k tag set maximizing
// the user's estimated influence spread.
func (en *Engine) Query(user, k int) (Result, error) {
	return en.query(context.Background(), user, nil, k, 1)
}

// QueryCtx is Query under a context: the best-first explorer checks ctx
// between expansions and abandons the query with ctx.Err() once it is
// cancelled or past its deadline. This is the serving-path entry point —
// it bounds tail latency and stops burning samples for disconnected
// clients.
func (en *Engine) QueryCtx(ctx context.Context, user, k int) (Result, error) {
	return en.query(ctx, user, nil, k, 1)
}

// QueryTop answers (user, k) and returns the m best tag sets in
// Result.Alternatives, descending by estimated influence. Larger m loosens
// best-effort pruning (the bar becomes the m-th best), so it explores more.
func (en *Engine) QueryTop(user, k, m int) (Result, error) {
	return en.QueryTopCtx(context.Background(), user, k, m)
}

// QueryTopCtx is QueryTop under a context (see QueryCtx).
func (en *Engine) QueryTopCtx(ctx context.Context, user, k, m int) (Result, error) {
	if m < 1 {
		return Result{}, fmt.Errorf("pitex: m = %d, want >= 1", m)
	}
	return en.query(ctx, user, nil, k, m)
}

// QueryWithPrefix answers the constrained query: the best size-k tag set
// containing all of prefix. This is the interactive exploration flow —
// pin the tags the post will certainly carry, ask what to add.
func (en *Engine) QueryWithPrefix(user int, prefix []int, k int) (Result, error) {
	return en.QueryWithPrefixCtx(context.Background(), user, prefix, k)
}

// QueryWithPrefixCtx is QueryWithPrefix under a context (see QueryCtx).
func (en *Engine) QueryWithPrefixCtx(ctx context.Context, user int, prefix []int, k int) (Result, error) {
	if err := ValidatePrefix(prefix, k, en.model.NumTags()); err != nil {
		return Result{}, err
	}
	return en.query(ctx, user, prefix, k, 1)
}

// ValidatePrefix checks a constrained query's pinned tag set: every tag in
// [0, numTags), no duplicates, and at most k tags (a prefix larger than
// the answer cannot be contained in it). Serving layers call it before
// admission so malformed prefixes fail fast instead of occupying an
// engine; QueryWithPrefixCtx applies the same checks.
func ValidatePrefix(prefix []int, k, numTags int) error {
	if len(prefix) > k {
		return fmt.Errorf("pitex: prefix has %d tags, exceeds k = %d", len(prefix), k)
	}
	for i, w := range prefix {
		if w < 0 || w >= numTags {
			return fmt.Errorf("pitex: prefix tag %d outside [0,%d)", w, numTags)
		}
		for _, prev := range prefix[:i] {
			if prev == w {
				return fmt.Errorf("pitex: duplicate prefix tag %d", w)
			}
		}
	}
	return nil
}

func (en *Engine) query(ctx context.Context, user int, prefix []int, k, m int) (Result, error) {
	if user < 0 || user >= en.net.NumUsers() {
		return Result{}, fmt.Errorf("pitex: user %d outside [0,%d)", user, en.net.NumUsers())
	}
	if k < 1 || k > en.model.NumTags() {
		return Result{}, fmt.Errorf("pitex: k = %d outside [1,%d]", k, en.model.NumTags())
	}
	if k > en.opts.MaxK {
		return Result{}, fmt.Errorf("pitex: k = %d exceeds MaxK = %d (rebuild the engine with a larger MaxK)", k, en.opts.MaxK)
	}
	start := time.Now()
	// Estimator work counters are cumulative; diff lifetime snapshots
	// around the query to attribute its cost. Both interfaces are
	// optional — index estimators expose WorkStats, online samplers only
	// an edge-visit count, remote adapters neither.
	wsEst, _ := en.est.(interface{ WorkStats() sampling.WorkStats })
	evEst, _ := en.est.(interface{ EdgeVisits() int64 })
	var wsBefore sampling.WorkStats
	var evBefore int64
	if wsEst != nil {
		wsBefore = wsEst.WorkStats()
	} else if evEst != nil {
		evBefore = evEst.EdgeVisits()
	}
	// Remote engines accumulate per-query degradation evidence in their
	// adapter; arm it with the query context and collect afterwards.
	ra, _ := en.est.(*remoteAdapter)
	if ra != nil {
		ra.begin(ctx)
	}
	var res Result
	switch {
	case en.opts.DisableBestEffort:
		if len(prefix) > 0 || m > 1 {
			return Result{}, fmt.Errorf("pitex: prefix and top-m queries require best-effort exploration")
		}
		tags, influence, stats := en.enumerateAll(ctx, graph.VertexID(user), k)
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		res = Result{
			Tags:              tags,
			Influence:         influence,
			FullSetsEstimated: stats,
		}
	case len(prefix) > 0:
		br, err := en.explorer.CompleteCtx(ctx, graph.VertexID(user), toTagIDs(prefix), k)
		if err != nil {
			return Result{}, err
		}
		res = fromBestfirst(br, en.model)
	default:
		br, err := en.explorer.QueryTopCtx(ctx, graph.VertexID(user), k, m)
		if err != nil {
			return Result{}, err
		}
		res = fromBestfirst(br, en.model)
		if m == 1 {
			res.Alternatives = nil
		}
	}
	if ra != nil {
		deg, err := ra.finish()
		if err != nil {
			return Result{}, err
		}
		res.Degraded = deg
	}
	res.Explain.Strategy = en.opts.Strategy.String()
	res.Explain.FullSetsEstimated = res.FullSetsEstimated
	res.Explain.PartialBoundsEstimated = res.PartialBoundsEstimated
	res.Explain.PrunedUnsupported = res.PrunedUnsupported
	res.Explain.PrunedByBound = res.PrunedByBound
	if wsEst != nil {
		ws := wsEst.WorkStats().Sub(wsBefore)
		res.Explain.ProbesEvaluated = ws.ProbesEvaluated
		res.Explain.ProbeCacheHits = ws.ProbeCacheHits
		res.Explain.ProbeCacheMisses = ws.ProbeCacheMisses
		if ws.ProbesEvaluated > 0 {
			res.Explain.ProbeCacheHitRatio = float64(ws.ProbeCacheHits) / float64(ws.ProbesEvaluated)
		}
		res.Explain.GraphsChecked = ws.GraphsChecked
		res.Explain.GraphsPruned = ws.GraphsPruned
		res.Explain.EarlyStops = ws.EarlyStops
		res.Explain.GraphsSkipped = ws.GraphsSkipped
	} else if evEst != nil {
		res.Explain.ProbesEvaluated = evEst.EdgeVisits() - evBefore
	}
	res.Elapsed = time.Since(start)
	res.TagNames = make([]string, len(res.Tags))
	for i, w := range res.Tags {
		res.TagNames[i] = en.model.TagName(w)
	}
	return res, nil
}

// fromBestfirst converts an explorer result into the public shape.
func fromBestfirst(br bestfirst.Result, model *TagModel) Result {
	res := Result{
		Tags:                   toInts(br.Tags),
		Influence:              br.Influence,
		FullSetsEstimated:      br.Stats.FullSetsEstimated,
		PartialBoundsEstimated: br.Stats.PartialBoundsEstimated,
		PrunedUnsupported:      br.Stats.PrunedUnsupported,
		PrunedByBound:          br.Stats.PrunedByBound,
	}
	res.Explain.FrontierExpansions = br.Stats.FrontierExpansions
	res.Explain.SamplesDrawn = br.Stats.SamplesDrawn
	res.Explain.BoundCacheHits = br.Stats.BoundCacheHits
	for _, sc := range br.All {
		ss := ScoredTagSet{Tags: toInts(sc.Tags), Influence: sc.Influence}
		ss.TagNames = make([]string, len(ss.Tags))
		for i, w := range ss.Tags {
			ss.TagNames[i] = model.TagName(w)
		}
		res.Alternatives = append(res.Alternatives, ss)
	}
	return res
}

// enumerateAll is the Sec. 4 enumeration framework without best-effort
// pruning: estimate every size-k tag set. It stops early (with a partial
// answer the caller must discard) once ctx is done.
func (en *Engine) enumerateAll(ctx context.Context, u graph.VertexID, k int) ([]int, float64, int64) {
	bestVal := -1.0
	var best []int
	var estimated int64
	enumerate.Combinations(en.model.NumTags(), k, func(idx []int32) bool {
		if ctx.Err() != nil {
			return false
		}
		tags := make([]topics.TagID, k)
		copy(tags, idx)
		if !en.model.m.PosteriorInto(tags, en.posterior) {
			if bestVal < 1 {
				bestVal = 1
				best = toInts(tags)
			}
			return true
		}
		estimated++
		r := en.est.EstimateProber(u, sampling.PosteriorProber{G: en.net.g, Posterior: en.posterior})
		if r.Influence > bestVal {
			bestVal = r.Influence
			best = toInts(tags)
		}
		return true
	})
	return best, bestVal, estimated
}

// InfluencedUser is one row of an audience profile.
type InfluencedUser struct {
	User        int
	Probability float64
}

// DefaultAudienceSamples is the cascade count Audience uses when samples
// <= 0 is passed.
const DefaultAudienceSamples = 2000

// Audience estimates which users the given tag set would reach: the top-m
// users by activation probability when user posts content tagged with tags
// (u itself excluded). It answers the follow-up question behind a PITEX
// result — "who exactly do these selling points reach?" — with samples
// independent cascades per call (DefaultAudienceSamples when samples <= 0).
func (en *Engine) Audience(user int, tags []int, m int, samples int64) ([]InfluencedUser, error) {
	if user < 0 || user >= en.net.NumUsers() {
		return nil, fmt.Errorf("pitex: user %d outside [0,%d)", user, en.net.NumUsers())
	}
	if m <= 0 {
		return nil, fmt.Errorf("pitex: m = %d, want >= 1", m)
	}
	if samples <= 0 {
		samples = DefaultAudienceSamples
	}
	for _, w := range tags {
		if w < 0 || w >= en.model.NumTags() {
			return nil, fmt.Errorf("pitex: tag %d outside [0,%d)", w, en.model.NumTags())
		}
	}
	if !en.model.m.PosteriorInto(toTagIDs(tags), en.posterior) {
		return nil, nil // nothing propagates
	}
	// The cascade stream is keyed to the full argument tuple, not just the
	// engine seed: a fixed per-engine stream would replay the same cascades
	// on every call (repeated calls could never average error down) and
	// correlate profiles across tag sets. Tags are hashed sorted, so the
	// stream — like the posterior and serve's cache key — depends on the
	// tag SET, not the argument order.
	seedParts := make([]uint64, 0, len(tags)+4)
	seedParts = append(seedParts, en.opts.Seed, 104729, uint64(user), uint64(samples))
	sorted := append([]int(nil), tags...)
	slices.Sort(sorted)
	for _, w := range sorted {
		seedParts = append(seedParts, uint64(w))
	}
	freqs := sampling.ActivationFrequencies(en.net.g, graph.VertexID(user),
		en.probe.Begin(sampling.PosteriorProber{G: en.net.g, Posterior: en.posterior}),
		samples, rng.New(rng.Mix(seedParts...)))
	if len(freqs) > m {
		freqs = freqs[:m]
	}
	out := make([]InfluencedUser, len(freqs))
	for i, f := range freqs {
		out[i] = InfluencedUser{User: int(f.Vertex), Probability: f.Probability}
	}
	return out, nil
}

// BatchResult pairs a query user with their result or error.
type BatchResult struct {
	User   int
	Result Result
	Err    error
}

// QueryAll answers one PITEX query per user, fanning out over workers
// engine clones (sharing any offline index). Results are returned in input
// order. workers <= 0 defaults to 4.
func (en *Engine) QueryAll(users []int, k, workers int) []BatchResult {
	return en.QueryAllCtx(context.Background(), users, k, workers)
}

// QueryAllCtx is QueryAll under a context: once ctx is cancelled, no new
// per-user query starts and the in-flight ones are abandoned at their next
// best-first expansion; users whose query never ran (or was cut short)
// carry ctx.Err() in BatchResult.Err. The fan-out always drains its
// workers before returning, so cancellation leaks no goroutines.
func (en *Engine) QueryAllCtx(ctx context.Context, users []int, k, workers int) []BatchResult {
	return RunBatchCtx(ctx, users, workers, func() BatchQueryFunc {
		clone := en.Clone()
		return func(ctx context.Context, user int) (Result, error) {
			return clone.QueryCtx(ctx, user, k)
		}
	})
}

// BatchQueryFunc answers one user's query inside a batch fan-out.
type BatchQueryFunc func(ctx context.Context, user int) (Result, error)

// RunBatchCtx is the shared batch fan-out machinery behind
// Engine.QueryAllCtx and serve.QueryBatch: it answers one query per user
// over `workers` goroutines (newWorker is called once per goroutine, so a
// worker can carry per-goroutine state like an engine clone) and returns
// results in input order. Once ctx is done, remaining users are marked
// with ctx.Err() instead of queried; every worker is always drained
// before returning. workers <= 0 defaults to 4.
func RunBatchCtx(ctx context.Context, users []int, workers int, newWorker func() BatchQueryFunc) []BatchResult {
	if workers <= 0 {
		workers = 4
	}
	if workers > len(users) {
		workers = len(users)
	}
	out := make([]BatchResult, len(users))
	if len(users) == 0 {
		return out
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		query := newWorker()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				// A cancelled batch must still consume every queued index —
				// that is what lets the producer below finish unconditionally
				// — but must not start the query.
				if err := ctx.Err(); err != nil {
					out[i] = BatchResult{User: users[i], Err: err}
					continue
				}
				res, err := query(ctx, users[i])
				out[i] = BatchResult{User: users[i], Result: res, Err: err}
			}
		}()
	}
	for i := range users {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out
}

// EstimateInfluence estimates E[I(user|tags)] with the engine's strategy.
func (en *Engine) EstimateInfluence(user int, tags []int) (float64, error) {
	if user < 0 || user >= en.net.NumUsers() {
		return 0, fmt.Errorf("pitex: user %d outside [0,%d)", user, en.net.NumUsers())
	}
	for _, w := range tags {
		if w < 0 || w >= en.model.NumTags() {
			return 0, fmt.Errorf("pitex: tag %d outside [0,%d)", w, en.model.NumTags())
		}
	}
	if !en.model.m.PosteriorInto(toTagIDs(tags), en.posterior) {
		return 1, nil // no topic generates this tag set: nothing propagates
	}
	ra, _ := en.est.(*remoteAdapter)
	if ra != nil {
		ra.begin(context.Background())
	}
	r := en.est.EstimateProber(graph.VertexID(user), sampling.PosteriorProber{G: en.net.g, Posterior: en.posterior})
	if ra != nil {
		if _, err := ra.finish(); err != nil {
			return 0, err
		}
	}
	return r.Influence, nil
}

func toInts(tags []topics.TagID) []int {
	out := make([]int, len(tags))
	for i, t := range tags {
		out[i] = int(t)
	}
	return out
}
