// Package obsv is the observability plane shared by every pitex tier: a
// dependency-free metrics registry with Prometheus text exposition, a
// lightweight distributed-tracing implementation (spans, trace
// propagation headers, a /tracez ring buffer), build-info reporting and
// slog helpers with trace-ID correlation.
//
// The package deliberately reimplements the small slice of
// OpenTelemetry/client_golang surface the fleet needs instead of
// importing either: counters and gauges are single atomics, spans are
// appended under one mutex, and everything is nil-safe so un-traced
// paths pay one pointer check.
package obsv

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready
// to use; all methods are safe for concurrent use and nil-safe.
type Counter struct {
	v atomic.Int64
}

// NewCounter returns a standalone counter (one not yet attached to a
// registry — see Registry.RegisterCounter for adopting it later).
func NewCounter() *Counter { return &Counter{} }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (negative deltas are ignored — counters only go up).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. The zero value is ready to
// use; all methods are safe for concurrent use and nil-safe.
type Gauge struct {
	bits atomic.Uint64
}

// NewGauge returns a standalone gauge.
func NewGauge() *Gauge { return &Gauge{} }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds d (a CAS loop — gauges are read-mostly).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Label is one name=value metric dimension.
type Label struct {
	Key   string
	Value string
}

// HistogramData is the exposition form of a latency histogram:
// per-bucket (non-cumulative) counts under ascending upper Bounds in
// seconds, with an implicit +Inf bucket as Counts' final entry
// (len(Counts) == len(Bounds)+1).
type HistogramData struct {
	Bounds []float64
	Counts []int64
	Sum    float64
	Count  int64
}

// Sample is one series of a family: its labels and either a scalar
// value (counter/gauge) or histogram data.
type Sample struct {
	Labels []Label
	Value  float64
	Hist   *HistogramData
}

// Family is one named metric with its samples, the unit the Prometheus
// text writer consumes.
type Family struct {
	Name    string
	Help    string
	Type    string // "counter", "gauge" or "histogram"
	Samples []Sample
}

// metricEntry is one registered series.
type metricEntry struct {
	labels  []Label
	counter *Counter
	gauge   *Gauge
	cfn     func() int64
	gfn     func() float64
}

type familyEntry struct {
	help    string
	typ     string
	order   []string // label signatures, registration order
	entries map[string]*metricEntry
}

// Registry is the unified metrics plane: counters, gauges, value
// functions and collectors registered under Prometheus-style family
// names, exposed by WriteTo/Handler in the text exposition format. Safe
// for concurrent use.
type Registry struct {
	mu         sync.Mutex
	families   map[string]*familyEntry
	order      []string
	collectors []func() []Family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*familyEntry)}
}

func labelSignature(labels []Label) string {
	s := ""
	for _, l := range labels {
		s += l.Key + "\x00" + l.Value + "\x00"
	}
	return s
}

func (r *Registry) family(name, help, typ string) *familyEntry {
	f := r.families[name]
	if f == nil {
		f = &familyEntry{help: help, typ: typ, entries: make(map[string]*metricEntry)}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	return f
}

func (r *Registry) entry(name, help, typ string, labels []Label) *metricEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, typ)
	sig := labelSignature(labels)
	e := f.entries[sig]
	if e == nil {
		e = &metricEntry{labels: labels}
		f.entries[sig] = e
		f.order = append(f.order, sig)
	}
	return e
}

// Counter returns the counter registered under (name, labels), creating
// it on first use. Repeated calls with the same identity return the
// same counter, so callers need not cache the handle.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	e := r.entry(name, help, "counter", labels)
	if e.counter == nil {
		e.counter = &Counter{}
	}
	return e.counter
}

// Gauge returns the gauge registered under (name, labels), creating it
// on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	e := r.entry(name, help, "gauge", labels)
	if e.gauge == nil {
		e.gauge = &Gauge{}
	}
	return e.gauge
}

// RegisterCounter adopts an existing counter (one owned by another
// subsystem, like the distrib client's scatter counters) as the series
// (name, labels).
func (r *Registry) RegisterCounter(name, help string, c *Counter, labels ...Label) {
	r.entry(name, help, "counter", labels).counter = c
}

// CounterFunc registers a counter whose value is read from fn at
// exposition time — the bridge for subsystems that already keep their
// own atomic counters.
func (r *Registry) CounterFunc(name, help string, fn func() int64, labels ...Label) {
	r.entry(name, help, "counter", labels).cfn = fn
}

// GaugeFunc registers a gauge read from fn at exposition time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.entry(name, help, "gauge", labels).gfn = fn
}

// RegisterCollector registers a callback producing whole families at
// exposition time — the bridge for dynamically labelled metrics like
// per-endpoint latency histograms.
func (r *Registry) RegisterCollector(fn func() []Family) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, fn)
}

// Gather snapshots every registered metric as families sorted by name
// (series keep registration order within a family; collector families
// merge with registered ones of the same name).
func (r *Registry) Gather() []Family {
	r.mu.Lock()
	out := make([]Family, 0, len(r.order))
	for _, name := range r.order {
		f := r.families[name]
		fam := Family{Name: name, Help: f.help, Type: f.typ}
		for _, sig := range f.order {
			e := f.entries[sig]
			s := Sample{Labels: e.labels}
			switch {
			case e.counter != nil:
				s.Value = float64(e.counter.Value())
			case e.gauge != nil:
				s.Value = e.gauge.Value()
			case e.cfn != nil:
				s.Value = float64(e.cfn())
			case e.gfn != nil:
				s.Value = e.gfn()
			}
			fam.Samples = append(fam.Samples, s)
		}
		out = append(out, fam)
	}
	collectors := r.collectors
	r.mu.Unlock()

	for _, fn := range collectors {
		for _, cf := range fn() {
			merged := false
			for i := range out {
				if out[i].Name == cf.Name {
					out[i].Samples = append(out[i].Samples, cf.Samples...)
					merged = true
					break
				}
			}
			if !merged {
				out = append(out, cf)
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// validateFamily sanity-checks a family before exposition; Gather output
// always passes, collector output might not.
func validateFamily(f Family) error {
	if !validMetricName(f.Name) {
		return fmt.Errorf("obsv: invalid metric name %q", f.Name)
	}
	switch f.Type {
	case "counter", "gauge", "histogram":
	default:
		return fmt.Errorf("obsv: metric %s has invalid type %q", f.Name, f.Type)
	}
	return nil
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
