package obsv

import (
	"runtime"
	"runtime/debug"
	"sync"
)

// BuildInfo is the binary's provenance, surfaced in /statsz and as the
// pitex_build_info metric.
type BuildInfo struct {
	GoVersion string `json:"go_version"`
	Main      string `json:"main,omitempty"`
	Version   string `json:"version,omitempty"`
	Revision  string `json:"revision,omitempty"`
	Time      string `json:"time,omitempty"`
	Modified  bool   `json:"modified,omitempty"`
}

var (
	buildOnce sync.Once
	buildInfo BuildInfo
)

// GetBuildInfo reads the binary's embedded build metadata once and
// caches it.
func GetBuildInfo() BuildInfo {
	buildOnce.Do(func() {
		buildInfo = BuildInfo{GoVersion: runtime.Version()}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		buildInfo.Main = bi.Main.Path
		buildInfo.Version = bi.Main.Version
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				buildInfo.Revision = s.Value
			case "vcs.time":
				buildInfo.Time = s.Value
			case "vcs.modified":
				buildInfo.Modified = s.Value == "true"
			}
		}
	})
	return buildInfo
}

// RegisterBuildInfo exposes the binary's provenance as the constant-1
// pitex_build_info gauge whose labels carry the interesting values —
// the Prometheus convention for stamping every scrape with a version.
func RegisterBuildInfo(r *Registry) {
	bi := GetBuildInfo()
	labels := []Label{{"go_version", bi.GoVersion}}
	if bi.Revision != "" {
		labels = append(labels, Label{"revision", bi.Revision})
	}
	r.Gauge("pitex_build_info",
		"Build provenance of this binary; value is always 1.",
		labels...).Set(1)
}
