package obsv

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

type testResp struct {
	status int
	header http.Header
	body   string
}

type testServer struct{ s *httptest.Server }

func newTestServer(t *testing.T, h http.Handler) *testServer {
	t.Helper()
	s := httptest.NewServer(h)
	t.Cleanup(s.Close)
	return &testServer{s: s}
}

func (ts *testServer) get(t *testing.T, path string) testResp {
	t.Helper()
	resp, err := http.Get(ts.s.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return testResp{status: resp.StatusCode, header: resp.Header, body: string(body)}
}

func TestTraceSpanTree(t *testing.T) {
	tr := NewTracer(8)
	trace := tr.StartTrace("query")
	if trace.ID() == "" || len(trace.ID()) != 16 {
		t.Fatalf("trace ID = %q, want 16 hex chars", trace.ID())
	}
	root := trace.StartSpan("root")
	root.SetAttr("user", 42)
	child := root.StartChild("rpc")
	child.SetAttr("endpoint", "http://shard")
	child.End()
	root.End()
	td := trace.Finish()

	if td.TraceID != trace.ID() || td.Name != "query" {
		t.Fatalf("TraceData = %+v", td)
	}
	if len(td.Spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(td.Spans))
	}
	if td.Spans[0].Name != "root" || td.Spans[0].ParentID != "" {
		t.Fatalf("root span = %+v", td.Spans[0])
	}
	if td.Spans[1].ParentID != td.Spans[0].SpanID {
		t.Fatalf("child parent = %q, want %q", td.Spans[1].ParentID, td.Spans[0].SpanID)
	}
	if td.Spans[1].Attrs["endpoint"] != "http://shard" {
		t.Fatalf("child attrs = %+v", td.Spans[1].Attrs)
	}
	if td.Spans[0].DurationNs < td.Spans[1].DurationNs {
		t.Fatal("root shorter than child")
	}
}

func TestTraceFinishIdempotent(t *testing.T) {
	tr := NewTracer(8)
	trace := tr.StartTrace("q")
	trace.StartSpan("s").End()
	trace.Finish()
	trace.Finish()
	if got := len(tr.Snapshot()); got != 1 {
		t.Fatalf("double Finish recorded %d traces, want 1", got)
	}
}

func TestTraceSpanCap(t *testing.T) {
	tr := NewTracer(8)
	trace := tr.StartTrace("big")
	for i := 0; i < maxSpansPerTrace+10; i++ {
		sp := trace.StartSpan("s")
		sp.End()
		if i >= maxSpansPerTrace && sp != nil {
			t.Fatal("span past cap was not dropped")
		}
	}
	td := trace.Finish()
	if len(td.Spans) != maxSpansPerTrace {
		t.Fatalf("spans = %d, want %d", len(td.Spans), maxSpansPerTrace)
	}
	if td.DroppedSpans != 10 {
		t.Fatalf("dropped = %d, want 10", td.DroppedSpans)
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	trace := tr.StartTrace("x") // nil tracer → nil trace
	if trace != nil {
		t.Fatal("nil tracer returned non-nil trace")
	}
	sp := trace.StartSpan("s")
	sp.SetAttr("k", "v")
	sp.End()
	sp.StartChild("c").End()
	if trace.ID() != "" || sp.ID() != "" {
		t.Fatal("nil IDs should be empty")
	}
	trace.Finish()
	if tr.Snapshot() != nil {
		t.Fatal("nil tracer snapshot should be nil")
	}
}

func TestContextPropagation(t *testing.T) {
	tr := NewTracer(8)
	trace := tr.StartTrace("ctx")
	ctx := ContextWithTrace(context.Background(), trace)
	if TraceFrom(ctx) != trace {
		t.Fatal("TraceFrom lost the trace")
	}
	// Survives WithoutCancel, the serve-layer decoupling path.
	if TraceFrom(context.WithoutCancel(ctx)) != trace {
		t.Fatal("trace did not survive WithoutCancel")
	}

	sp, ctx2 := StartSpan(ctx, "outer")
	if sp == nil || SpanFrom(ctx2) != sp {
		t.Fatal("StartSpan did not attach span")
	}
	inner, _ := StartSpan(ctx2, "inner")
	inner.End()
	sp.End()
	td := trace.Finish()
	if len(td.Spans) != 2 || td.Spans[1].ParentID != td.Spans[0].SpanID {
		t.Fatalf("ctx spans = %+v", td.Spans)
	}

	// No trace in context: zero-cost path.
	nsp, nctx := StartSpan(context.Background(), "none")
	if nsp != nil || nctx != context.Background() {
		t.Fatal("un-traced StartSpan should return (nil, same ctx)")
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 5; i++ {
		trace := tr.StartTrace(strings.Repeat("t", i+1))
		trace.Finish()
	}
	snap := tr.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot = %d traces, want 3", len(snap))
	}
	// Newest first: names ttttt, tttt, ttt.
	if snap[0].Name != "ttttt" || snap[2].Name != "ttt" {
		t.Fatalf("snapshot order = %q, %q, %q", snap[0].Name, snap[1].Name, snap[2].Name)
	}
}

func TestTracerJoin(t *testing.T) {
	tr := NewTracer(4)
	j := tr.Join("deadbeefcafef00d", "remote")
	if j.ID() != "deadbeefcafef00d" {
		t.Fatalf("Join ID = %q", j.ID())
	}
	j2 := tr.Join("", "minted")
	if j2.ID() == "" {
		t.Fatal("Join with empty ID should mint one")
	}
}

func TestTraceHeaderRoundTrip(t *testing.T) {
	h := FormatTraceHeader("deadbeefcafef00d", "0123456789abcdef")
	tid, sid, ok := ParseTraceHeader(h)
	if !ok || tid != "deadbeefcafef00d" || sid != "0123456789abcdef" {
		t.Fatalf("round-trip = (%q, %q, %v)", tid, sid, ok)
	}
	tid, sid, ok = ParseTraceHeader("deadbeefcafef00d")
	if !ok || tid != "deadbeefcafef00d" || sid != "" {
		t.Fatalf("trace-only = (%q, %q, %v)", tid, sid, ok)
	}
	for _, bad := range []string{"", "UPPERHEX-abc", "zzzz", strings.Repeat("a", 40)} {
		if _, _, ok := ParseTraceHeader(bad); ok {
			t.Errorf("ParseTraceHeader(%q) accepted", bad)
		}
	}
}

func TestTracezHandler(t *testing.T) {
	tr := NewTracer(4)
	trace := tr.StartTrace("served")
	trace.StartSpan("stage").End()
	trace.Finish()

	srv := newTestServer(t, tr.Handler())
	resp := srv.get(t, "/")
	if resp.status != http.StatusOK {
		t.Fatalf("status = %d", resp.status)
	}
	var out struct {
		Traces []TraceData `json:"traces"`
	}
	if err := json.Unmarshal([]byte(resp.body), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Traces) != 1 || out.Traces[0].Name != "served" || len(out.Traces[0].Spans) != 1 {
		t.Fatalf("tracez = %+v", out)
	}
}

func TestLoggerTraceCorrelation(t *testing.T) {
	var sb strings.Builder
	logger, err := NewLogger(&sb, "json")
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracer(4)
	trace := tr.StartTrace("log")
	ctx := ContextWithTrace(context.Background(), trace)
	logger.InfoContext(ctx, "hello", "k", "v")
	var rec map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &rec); err != nil {
		t.Fatalf("log line not JSON: %v (%q)", err, sb.String())
	}
	if rec["trace_id"] != trace.ID() {
		t.Fatalf("trace_id = %v, want %s", rec["trace_id"], trace.ID())
	}
	if rec["k"] != "v" || rec["msg"] != "hello" {
		t.Fatalf("record = %+v", rec)
	}

	sb.Reset()
	logger.Info("no-trace")
	if strings.Contains(sb.String(), "trace_id") {
		t.Fatal("un-traced log line carried trace_id")
	}

	if _, err := NewLogger(io.Discard, "xml"); err == nil {
		t.Fatal("unknown format accepted")
	}
	if _, err := NewLogger(io.Discard, "text"); err != nil {
		t.Fatal(err)
	}
}
