package obsv

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"
)

// Tracer owns a fixed ring of recently finished traces and mints new
// ones. Both server binaries keep one and expose its Handler as
// /tracez.
type Tracer struct {
	mu    sync.Mutex
	buf   []TraceData
	next  int
	count int
}

// DefaultTraceCapacity is the ring size used when NewTracer is given a
// non-positive capacity.
const DefaultTraceCapacity = 128

// NewTracer returns a tracer retaining the last capacity finished
// traces.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{buf: make([]TraceData, capacity)}
}

// StartTrace begins a trace with a freshly minted ID. Safe on a nil
// tracer (returns nil, and every downstream span call no-ops).
func (tr *Tracer) StartTrace(name string) *Trace {
	if tr == nil {
		return nil
	}
	return &Trace{id: newID(), name: name, start: time.Now(), tracer: tr}
}

// Join begins a trace adopting a propagated trace ID (minting one if
// traceID is empty), used by shard servers on receipt of X-Pitex-Trace.
func (tr *Tracer) Join(traceID, name string) *Trace {
	if tr == nil {
		return nil
	}
	if traceID == "" {
		traceID = newID()
	}
	return &Trace{id: traceID, name: name, start: time.Now(), tracer: tr}
}

func (tr *Tracer) record(td TraceData) {
	tr.mu.Lock()
	tr.buf[tr.next] = td
	tr.next = (tr.next + 1) % len(tr.buf)
	if tr.count < len(tr.buf) {
		tr.count++
	}
	tr.mu.Unlock()
}

// Snapshot returns the retained traces, newest first.
func (tr *Tracer) Snapshot() []TraceData {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := make([]TraceData, 0, tr.count)
	for i := 1; i <= tr.count; i++ {
		idx := (tr.next - i + len(tr.buf)) % len(tr.buf)
		out = append(out, tr.buf[idx])
	}
	return out
}

// Handler returns the /tracez HTTP handler: the retained traces as
// {"traces":[...]}, newest first.
func (tr *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{"traces": tr.Snapshot()})
	})
}
