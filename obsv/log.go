package obsv

import (
	"context"
	"fmt"
	"io"
	"log/slog"
)

// NewLogger builds a slog.Logger writing to w in the given format
// ("text" or "json") whose records automatically carry a trace_id
// attribute when the context holds a trace.
func NewLogger(w io.Writer, format string) (*slog.Logger, error) {
	var h slog.Handler
	switch format {
	case "", "text":
		h = slog.NewTextHandler(w, nil)
	case "json":
		h = slog.NewJSONHandler(w, nil)
	default:
		return nil, fmt.Errorf("obsv: unknown log format %q (want text or json)", format)
	}
	return slog.New(&traceHandler{inner: h}), nil
}

// traceHandler decorates records with the context's trace ID so log
// lines correlate with /tracez entries.
type traceHandler struct {
	inner slog.Handler
}

func (h *traceHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

func (h *traceHandler) Handle(ctx context.Context, rec slog.Record) error {
	if t := TraceFrom(ctx); t != nil {
		rec.AddAttrs(slog.String("trace_id", t.ID()))
	}
	return h.inner.Handle(ctx, rec)
}

func (h *traceHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &traceHandler{inner: h.inner.WithAttrs(attrs)}
}

func (h *traceHandler) WithGroup(name string) slog.Handler {
	return &traceHandler{inner: h.inner.WithGroup(name)}
}
