package obsv

import (
	"strings"
	"testing"
)

func TestWriteTextRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("pitex_requests_total", "Requests served.", Label{"endpoint", "selling-points"}, Label{"strategy", "RR"}).Add(42)
	r.Gauge("pitex_pool_in_use", "Engines checked out.").Set(3)
	r.RegisterCollector(func() []Family {
		return []Family{{
			Name: "pitex_request_duration_seconds",
			Help: "Latency.",
			Type: "histogram",
			Samples: []Sample{{
				Labels: []Label{{"endpoint", "audience"}},
				Hist: &HistogramData{
					Bounds: []float64{0.001, 0.01, 0.1},
					Counts: []int64{5, 3, 1, 2}, // non-cumulative, +Inf last
					Sum:    0.75,
					Count:  11,
				},
			}},
		}}
	})

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()

	fams, err := ParseText(text)
	if err != nil {
		t.Fatalf("own output does not parse: %v\n%s", err, text)
	}
	if f := fams["pitex_requests_total"]; f == nil || f.Samples[0].Value != 42 {
		t.Fatalf("counter round-trip failed: %+v", f)
	}
	if f := fams["pitex_requests_total"]; f.Samples[0].Labels["strategy"] != "RR" {
		t.Fatalf("label round-trip failed: %+v", f.Samples[0].Labels)
	}
	h := fams["pitex_request_duration_seconds"]
	if h == nil || h.Type != "histogram" {
		t.Fatalf("histogram family missing: %+v", h)
	}
	// 3 finite buckets + +Inf + sum + count = 6 samples.
	if len(h.Samples) != 6 {
		t.Fatalf("histogram samples = %d, want 6", len(h.Samples))
	}
	wantCum := map[string]float64{"0.001": 5, "0.01": 8, "0.1": 9, "+Inf": 11}
	for _, s := range h.Samples {
		if le, ok := s.Labels["le"]; ok {
			if s.Value != wantCum[le] {
				t.Errorf("bucket le=%s value = %v, want %v", le, s.Value, wantCum[le])
			}
		}
		if strings.HasSuffix(s.Name, "_count") && s.Value != 11 {
			t.Errorf("_count = %v, want 11", s.Value)
		}
		if strings.HasSuffix(s.Name, "_sum") && s.Value != 0.75 {
			t.Errorf("_sum = %v, want 0.75", s.Value)
		}
	}
}

func TestWriteLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "h", Label{"path", `a\b"c` + "\nd"}).Inc()
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseText(sb.String())
	if err != nil {
		t.Fatalf("escaped output does not parse: %v\n%s", err, sb.String())
	}
	got := fams["esc_total"].Samples[0].Labels["path"]
	if want := `a\b"c` + "\nd"; got != want {
		t.Fatalf("escape round-trip: got %q, want %q", got, want)
	}
}

func TestParseTextRejections(t *testing.T) {
	cases := map[string]string{
		"no TYPE":          "orphan_metric 1\n",
		"bad comment":      "# NOPE foo bar\n",
		"unknown type":     "# TYPE m widget\nm 1\n",
		"duplicate TYPE":   "# TYPE m counter\n# TYPE m counter\nm 1\n",
		"bad name":         "# TYPE 9bad counter\n9bad 1\n",
		"bad value":        "# TYPE m counter\nm notanumber\n",
		"bad label":        "# TYPE m counter\nm{k=unquoted} 1\n",
		"duplicate label":  "# TYPE m counter\nm{k=\"a\",k=\"b\"} 1\n",
		"bucket sans le":   "# TYPE h histogram\nh_bucket 1\nh_sum 1\nh_count 1\n",
		"no inf bucket":    "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"non-cumulative":   "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
		"count mismatch":   "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 4\n",
		"bad timestamp":    "# TYPE m counter\nm 1 notatime\n",
		"dangling escape":  "# TYPE m counter\nm{k=\"a\\\"} 1\n",
		"unknown escape":   "# TYPE m counter\nm{k=\"a\\t\"} 1\n",
		"colon label name": "# TYPE m counter\nm{a:b=\"v\"} 1\n",
	}
	for name, text := range cases {
		if _, err := ParseText(text); err == nil {
			t.Errorf("%s: ParseText accepted %q", name, text)
		}
	}
}

func TestParseTextAccepts(t *testing.T) {
	text := "# HELP m A counter.\n" +
		"# TYPE m counter\n" +
		"m{a=\"x\"} 1 1700000000\n" + // optional timestamp
		"m 2.5e3\n" +
		"# TYPE g gauge\n" +
		"g -0.25\n"
	fams, err := ParseText(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(fams["m"].Samples) != 2 {
		t.Fatalf("m samples = %+v", fams["m"].Samples)
	}
	if fams["m"].Samples[1].Value != 2500 {
		t.Fatalf("scientific value = %v", fams["m"].Samples[1].Value)
	}
	if fams["g"].Samples[0].Value != -0.25 {
		t.Fatalf("gauge = %v", fams["g"].Samples[0].Value)
	}
}

func TestHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.Counter("pitex_up", "h").Inc()
	srv := newTestServer(t, r.Handler())
	resp := srv.get(t, "/")
	if got := resp.header.Get("Content-Type"); !strings.HasPrefix(got, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", got)
	}
	if _, err := ParseText(resp.body); err != nil {
		t.Fatalf("handler body does not parse: %v", err)
	}
}
