package obsv

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"strings"
	"sync"
	"time"
)

// TraceHeader is the wire header carrying "traceID-spanID" from the
// coordinator to shard servers, so one query's spans correlate across
// processes.
const TraceHeader = "X-Pitex-Trace"

// FormatTraceHeader renders the header value. spanID may be empty.
func FormatTraceHeader(traceID, spanID string) string {
	if spanID == "" {
		return traceID
	}
	return traceID + "-" + spanID
}

// ParseTraceHeader splits a header value back into its IDs. IDs are hex
// strings, so the separator is unambiguous.
func ParseTraceHeader(v string) (traceID, spanID string, ok bool) {
	v = strings.TrimSpace(v)
	if v == "" {
		return "", "", false
	}
	traceID, spanID, _ = strings.Cut(v, "-")
	if !validHexID(traceID) || (spanID != "" && !validHexID(spanID)) {
		return "", "", false
	}
	return traceID, spanID, true
}

func validHexID(s string) bool {
	if s == "" || len(s) > 32 {
		return false
	}
	for _, c := range s {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// newID mints a 64-bit random hex ID.
func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; a zero ID still
		// traces, it just won't be unique.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// maxSpansPerTrace bounds one trace's span list: a best-first query can
// run hundreds of estimations, each with scatter/RPC children, and an
// unbounded trace would turn a slow query into a memory problem. Spans
// past the cap are counted, not recorded.
const maxSpansPerTrace = 512

// Span is one timed stage of a trace. A nil *Span is a valid no-op
// receiver, so un-traced code paths cost one pointer check.
type Span struct {
	tr     *Trace
	name   string
	id     string
	parent string
	start  time.Time

	mu    sync.Mutex
	dur   time.Duration
	ended bool
	attrs map[string]any
}

// SetAttr attaches one key/value to the span (last write per key wins).
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]any, 4)
	}
	s.attrs[key] = value
	s.mu.Unlock()
}

// End records the span's duration; only the first End counts.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = time.Since(s.start)
	}
	s.mu.Unlock()
}

// ID returns the span's hex ID ("" for nil).
func (s *Span) ID() string {
	if s == nil {
		return ""
	}
	return s.id
}

// StartChild opens a child span.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tr.startSpan(name, s.id)
}

// Trace is one request's span collection. Create one with
// Tracer.StartTrace (or Join, on the receiving side of a propagated
// header); a nil *Trace no-ops every method.
type Trace struct {
	id     string
	name   string
	start  time.Time
	tracer *Tracer

	mu      sync.Mutex
	spans   []*Span
	dropped int
	done    bool
}

// ID returns the trace's hex ID ("" for nil).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// StartSpan opens a root-level span.
func (t *Trace) StartSpan(name string) *Span {
	return t.startSpan(name, "")
}

func (t *Trace) startSpan(name, parent string) *Span {
	if t == nil {
		return nil
	}
	sp := &Span{tr: t, name: name, id: newID(), parent: parent, start: time.Now()}
	t.mu.Lock()
	if len(t.spans) >= maxSpansPerTrace {
		t.dropped++
		t.mu.Unlock()
		return nil
	}
	t.spans = append(t.spans, sp)
	t.mu.Unlock()
	return sp
}

// SpanData is the exported (JSON) form of a span.
type SpanData struct {
	Name          string         `json:"name"`
	SpanID        string         `json:"span_id"`
	ParentID      string         `json:"parent_id,omitempty"`
	StartUnixNano int64          `json:"start_unix_nano"`
	DurationNs    int64          `json:"duration_ns"`
	Attrs         map[string]any `json:"attrs,omitempty"`
}

// TraceData is the exported (JSON) form of a finished trace, the shape
// /tracez serves and ?trace=1 inlines.
type TraceData struct {
	TraceID       string     `json:"trace_id"`
	Name          string     `json:"name"`
	StartUnixNano int64      `json:"start_unix_nano"`
	DurationNs    int64      `json:"duration_ns"`
	DroppedSpans  int        `json:"dropped_spans,omitempty"`
	Spans         []SpanData `json:"spans"`
}

// Finish seals the trace, records it into its tracer's ring and returns
// the exported form. Only the first Finish records; later calls return
// the same data. Unended spans are closed at the trace's end time.
func (t *Trace) Finish() TraceData {
	if t == nil {
		return TraceData{}
	}
	t.mu.Lock()
	first := !t.done
	t.done = true
	td := TraceData{
		TraceID:       t.id,
		Name:          t.name,
		StartUnixNano: t.start.UnixNano(),
		DurationNs:    int64(time.Since(t.start)),
		DroppedSpans:  t.dropped,
		Spans:         make([]SpanData, 0, len(t.spans)),
	}
	spans := t.spans
	t.mu.Unlock()
	for _, sp := range spans {
		sp.mu.Lock()
		if !sp.ended {
			sp.ended = true
			sp.dur = time.Since(sp.start)
		}
		sd := SpanData{
			Name:          sp.name,
			SpanID:        sp.id,
			ParentID:      sp.parent,
			StartUnixNano: sp.start.UnixNano(),
			DurationNs:    int64(sp.dur),
		}
		if len(sp.attrs) > 0 {
			sd.Attrs = make(map[string]any, len(sp.attrs))
			for k, v := range sp.attrs {
				sd.Attrs[k] = v
			}
		}
		sp.mu.Unlock()
		td.Spans = append(td.Spans, sd)
	}
	if first && t.tracer != nil {
		t.tracer.record(td)
	}
	return td
}

type traceCtxKey struct{}
type spanCtxKey struct{}

// ContextWithTrace attaches a trace to ctx; it survives
// context.WithoutCancel, so serving layers that decouple estimation
// from client cancellation keep their correlation.
func ContextWithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, t)
}

// TraceFrom returns the trace attached to ctx, or nil.
func TraceFrom(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(traceCtxKey{}).(*Trace)
	return t
}

// SpanFrom returns the current span attached to ctx, or nil.
func SpanFrom(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// StartSpan opens a span as a child of ctx's current span (root-level
// when there is none) and returns the span plus a derived context with
// it as current. When ctx carries no trace it returns (nil, ctx)
// unchanged — zero cost on un-traced paths.
func StartSpan(ctx context.Context, name string) (*Span, context.Context) {
	t := TraceFrom(ctx)
	if t == nil {
		return nil, ctx
	}
	var sp *Span
	if parent := SpanFrom(ctx); parent != nil {
		sp = parent.StartChild(name)
	} else {
		sp = t.StartSpan(name)
	}
	if sp == nil {
		return nil, ctx
	}
	return sp, context.WithValue(ctx, spanCtxKey{}, sp)
}
