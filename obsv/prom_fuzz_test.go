package obsv

import (
	"strings"
	"testing"
)

// FuzzParseText exercises the Prometheus text-format parser against
// arbitrary input: it must never panic, and anything it accepts must be
// internally consistent — declared families with valid names, every
// sample attributed to a declared family, histograms validated.
func FuzzParseText(f *testing.F) {
	// Well-formed exposition covering the family types and the sample
	// grammar (labels, escapes, timestamps, scientific notation).
	f.Add("# HELP m A counter.\n# TYPE m counter\nm{a=\"x\"} 1 1700000000\nm 2.5e3\n")
	f.Add("# TYPE g gauge\ng 0\n")
	f.Add("# TYPE h histogram\nh_bucket{le=\"0.1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 0.5\nh_count 2\n")
	f.Add("# TYPE s summary\ns{quantile=\"0.5\"} 1\ns_sum 1\ns_count 1\n")
	f.Add("# TYPE esc counter\nesc{path=\"a\\\\b\\\"c\\nd\"} 1\n")
	// Near-misses the parser must reject without panicking.
	f.Add("# TYPE m counter\n# TYPE m counter\nm 1\n")
	f.Add("# TYPE h histogram\nh_bucket 1\nh_sum 1\nh_count 1\n")
	f.Add("m 1\n")
	f.Add("# TYPE 9bad counter\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		fams, err := ParseText(input)
		if err != nil {
			return
		}
		for name, fam := range fams {
			if fam == nil {
				t.Fatalf("accepted input has nil family %q", name)
			}
			if fam.Name != name || !validMetricName(fam.Name) {
				t.Fatalf("accepted family has inconsistent or invalid name %q/%q", name, fam.Name)
			}
			for _, s := range fam.Samples {
				if !strings.HasPrefix(s.Name, fam.Name) {
					t.Fatalf("sample %q filed under family %q", s.Name, fam.Name)
				}
			}
		}
	})
}
