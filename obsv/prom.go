package obsv

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// This file implements the Prometheus text exposition format (version
// 0.0.4): WriteTo renders a registry for a /metrics endpoint, and
// ParseText is a strict reader of the same format used by tests and the
// CI obsv-smoke step to prove the fleet's output is actually scrapeable.

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func writeLabels(w io.Writer, labels []Label, extra ...Label) error {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return nil
	}
	parts := make([]string, len(all))
	for i, l := range all {
		parts[i] = l.Key + `="` + escapeLabelValue(l.Value) + `"`
	}
	_, err := fmt.Fprintf(w, "{%s}", strings.Join(parts, ","))
	return err
}

// WriteFamilies renders families in the text exposition format. Families
// failing validation (bad names, unknown types) are skipped rather than
// corrupting the scrape.
func WriteFamilies(w io.Writer, families []Family) error {
	for _, f := range families {
		if validateFamily(f) != nil {
			continue
		}
		if f.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.Name, escapeHelp(f.Help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Type); err != nil {
			return err
		}
		for _, s := range f.Samples {
			if err := writeSample(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSample(w io.Writer, f Family, s Sample) error {
	if f.Type != "histogram" {
		if _, err := io.WriteString(w, f.Name); err != nil {
			return err
		}
		if err := writeLabels(w, s.Labels); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, " %s\n", formatValue(s.Value))
		return err
	}
	h := s.Hist
	if h == nil || len(h.Counts) != len(h.Bounds)+1 {
		return nil
	}
	var cum int64
	for i, bound := range h.Bounds {
		cum += h.Counts[i]
		if _, err := io.WriteString(w, f.Name+"_bucket"); err != nil {
			return err
		}
		if err := writeLabels(w, s.Labels, Label{"le", formatValue(bound)}); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, " %d\n", cum); err != nil {
			return err
		}
	}
	cum += h.Counts[len(h.Bounds)]
	if _, err := io.WriteString(w, f.Name+"_bucket"); err != nil {
		return err
	}
	if err := writeLabels(w, s.Labels, Label{"le", "+Inf"}); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, " %d\n", cum); err != nil {
		return err
	}
	if _, err := io.WriteString(w, f.Name+"_sum"); err != nil {
		return err
	}
	if err := writeLabels(w, s.Labels); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, " %s\n", formatValue(h.Sum)); err != nil {
		return err
	}
	if _, err := io.WriteString(w, f.Name+"_count"); err != nil {
		return err
	}
	if err := writeLabels(w, s.Labels); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, " %d\n", h.Count)
	return err
}

// WriteText renders the registry's current state in the text exposition
// format.
func (r *Registry) WriteText(w io.Writer) error {
	return WriteFamilies(w, r.Gather())
}

// Handler returns the /metrics HTTP handler.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}

// ParsedSample is one sample line of a scraped exposition.
type ParsedSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// ParsedFamily is one metric family of a scraped exposition.
type ParsedFamily struct {
	Name    string
	Type    string
	Samples []ParsedSample
}

// ParseText strictly parses a Prometheus text-format exposition: every
// sample must belong to a declared # TYPE, names and labels must be
// well-formed, histogram buckets must carry le, be cumulative and end
// in a +Inf bucket matching _count. It returns the families keyed by
// name, or the first violation.
func ParseText(data string) (map[string]*ParsedFamily, error) {
	families := make(map[string]*ParsedFamily)
	var lineNo int
	for _, line := range strings.Split(data, "\n") {
		lineNo++
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return nil, fmt.Errorf("line %d: malformed comment %q", lineNo, line)
			}
			name := fields[2]
			if !validMetricName(name) {
				return nil, fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return nil, fmt.Errorf("line %d: TYPE line missing type", lineNo)
				}
				typ := fields[3]
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown type %q", lineNo, typ)
				}
				if _, dup := families[name]; dup {
					return nil, fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
				}
				families[name] = &ParsedFamily{Name: name, Type: typ}
			}
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		fam := familyFor(families, s.Name)
		if fam == nil {
			return nil, fmt.Errorf("line %d: sample %s has no preceding # TYPE", lineNo, s.Name)
		}
		if fam.Type == "histogram" && strings.HasSuffix(s.Name, "_bucket") {
			if _, ok := s.Labels["le"]; !ok {
				return nil, fmt.Errorf("line %d: histogram bucket without le label", lineNo)
			}
		}
		fam.Samples = append(fam.Samples, s)
	}
	for _, fam := range families {
		if fam.Type == "histogram" {
			if err := validateHistogram(fam); err != nil {
				return nil, err
			}
		}
	}
	return families, nil
}

// familyFor resolves a sample name to its declared family, accepting
// the _bucket/_sum/_count suffixes of histograms and summaries.
func familyFor(families map[string]*ParsedFamily, name string) *ParsedFamily {
	if f, ok := families[name]; ok {
		return f
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suffix); ok {
			if f, ok := families[base]; ok && (f.Type == "histogram" || f.Type == "summary") {
				return f
			}
		}
	}
	return nil
}

func parseSampleLine(line string) (ParsedSample, error) {
	s := ParsedSample{Labels: make(map[string]string)}
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = line[:i]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest := line[i:]
	if rest[0] == '{' {
		var err error
		rest, err = parseLabels(rest[1:], s.Labels)
		if err != nil {
			return s, err
		}
	}
	valueStr := strings.TrimSpace(rest)
	// An optional timestamp may trail the value.
	if j := strings.IndexByte(valueStr, ' '); j >= 0 {
		ts := strings.TrimSpace(valueStr[j+1:])
		if _, err := strconv.ParseInt(ts, 10, 64); err != nil {
			return s, fmt.Errorf("bad timestamp %q", ts)
		}
		valueStr = valueStr[:j]
	}
	v, err := strconv.ParseFloat(valueStr, 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q", valueStr)
	}
	s.Value = v
	return s, nil
}

// parseLabels consumes `name="value",...}` and returns the remainder
// after the closing brace.
func parseLabels(rest string, into map[string]string) (string, error) {
	for {
		rest = strings.TrimLeft(rest, " ")
		if strings.HasPrefix(rest, "}") {
			return rest[1:], nil
		}
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return "", fmt.Errorf("malformed labels near %q", rest)
		}
		name := strings.TrimSpace(rest[:eq])
		if !validLabelName(name) {
			return "", fmt.Errorf("invalid label name %q", name)
		}
		rest = rest[eq+1:]
		if !strings.HasPrefix(rest, `"`) {
			return "", fmt.Errorf("label %s value not quoted", name)
		}
		rest = rest[1:]
		var val strings.Builder
		for {
			if rest == "" {
				return "", fmt.Errorf("unterminated label value for %s", name)
			}
			c := rest[0]
			rest = rest[1:]
			if c == '"' {
				break
			}
			if c == '\\' {
				if rest == "" {
					return "", fmt.Errorf("dangling escape in label %s", name)
				}
				switch rest[0] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return "", fmt.Errorf("bad escape \\%c in label %s", rest[0], name)
				}
				rest = rest[1:]
				continue
			}
			val.WriteByte(c)
		}
		if _, dup := into[name]; dup {
			return "", fmt.Errorf("duplicate label %s", name)
		}
		into[name] = val.String()
		rest = strings.TrimLeft(rest, " ")
		if strings.HasPrefix(rest, ",") {
			rest = rest[1:]
			continue
		}
		if strings.HasPrefix(rest, "}") {
			return rest[1:], nil
		}
		return "", fmt.Errorf("malformed labels near %q", rest)
	}
}

// validateHistogram checks one histogram family's bucket discipline per
// label set: cumulative counts, a +Inf bucket, and _count equal to it.
func validateHistogram(fam *ParsedFamily) error {
	type series struct {
		lastCum  float64
		infCum   float64
		hasInf   bool
		count    float64
		hasCount bool
	}
	bySig := make(map[string]*series)
	sig := func(labels map[string]string) string {
		keys := make([]string, 0, len(labels))
		for k := range labels {
			if k != "le" {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		var b strings.Builder
		for _, k := range keys {
			b.WriteString(k + "\x00" + labels[k] + "\x00")
		}
		return b.String()
	}
	for _, s := range fam.Samples {
		key := sig(s.Labels)
		se := bySig[key]
		if se == nil {
			se = &series{}
			bySig[key] = se
		}
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			if s.Value < se.lastCum {
				return fmt.Errorf("histogram %s: non-cumulative buckets", fam.Name)
			}
			se.lastCum = s.Value
			if s.Labels["le"] == "+Inf" {
				se.infCum, se.hasInf = s.Value, true
			}
		case strings.HasSuffix(s.Name, "_count"):
			se.count, se.hasCount = s.Value, true
		}
	}
	for _, se := range bySig {
		if !se.hasInf {
			return fmt.Errorf("histogram %s: missing +Inf bucket", fam.Name)
		}
		if se.hasCount && se.count != se.infCum {
			return fmt.Errorf("histogram %s: _count %v != +Inf bucket %v", fam.Name, se.count, se.infCum)
		}
	}
	return nil
}
