package obsv

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	c := NewCounter()
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters only go up
	c.Add(0)
	if got := c.Value(); got != 5 {
		t.Fatalf("Value = %d, want 5", got)
	}
}

func TestCounterNilSafe(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(7)
	if got := c.Value(); got != 0 {
		t.Fatalf("nil counter Value = %d, want 0", got)
	}
}

func TestGaugeBasics(t *testing.T) {
	g := NewGauge()
	g.Set(2.5)
	g.Add(1.5)
	g.Add(-1)
	if got := g.Value(); got != 3 {
		t.Fatalf("Value = %v, want 3", got)
	}
}

func TestGaugeNilSafe(t *testing.T) {
	var g *Gauge
	g.Set(1)
	g.Add(1)
	if got := g.Value(); got != 0 {
		t.Fatalf("nil gauge Value = %v, want 0", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	c := NewCounter()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("Value = %d, want %d", got, workers*per)
	}
}

func TestGaugeConcurrentAdd(t *testing.T) {
	g := NewGauge()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != workers*per {
		t.Fatalf("Value = %v, want %d", got, workers*per)
	}
}

func TestRegistryIdempotentHandles(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("pitex_test_total", "help", Label{"k", "v"})
	b := r.Counter("pitex_test_total", "help", Label{"k", "v"})
	if a != b {
		t.Fatal("same (name, labels) returned distinct counters")
	}
	c := r.Counter("pitex_test_total", "help", Label{"k", "other"})
	if a == c {
		t.Fatal("distinct labels returned the same counter")
	}
	g1 := r.Gauge("pitex_test_gauge", "help")
	g2 := r.Gauge("pitex_test_gauge", "help")
	if g1 != g2 {
		t.Fatal("same gauge identity returned distinct gauges")
	}
}

func TestRegistryGather(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_last", "a counter").Add(3)
	r.Gauge("aa_first", "a gauge").Set(1.5)
	r.CounterFunc("mid_func", "from fn", func() int64 { return 9 })
	r.GaugeFunc("mid_gauge_func", "from fn", func() float64 { return 0.5 })
	ext := NewCounter()
	ext.Add(11)
	r.RegisterCounter("adopted_total", "adopted", ext)

	fams := r.Gather()
	byName := map[string]Family{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	for i := 1; i < len(fams); i++ {
		if fams[i-1].Name > fams[i].Name {
			t.Fatalf("families not sorted: %s > %s", fams[i-1].Name, fams[i].Name)
		}
	}
	checks := []struct {
		name string
		typ  string
		val  float64
	}{
		{"zz_last", "counter", 3},
		{"aa_first", "gauge", 1.5},
		{"mid_func", "counter", 9},
		{"mid_gauge_func", "gauge", 0.5},
		{"adopted_total", "counter", 11},
	}
	for _, c := range checks {
		f, ok := byName[c.name]
		if !ok {
			t.Fatalf("family %s missing", c.name)
		}
		if f.Type != c.typ {
			t.Errorf("%s type = %s, want %s", c.name, f.Type, c.typ)
		}
		if len(f.Samples) != 1 || f.Samples[0].Value != c.val {
			t.Errorf("%s samples = %+v, want single value %v", c.name, f.Samples, c.val)
		}
	}
}

func TestRegistryCollectorMerge(t *testing.T) {
	r := NewRegistry()
	r.Counter("shared_total", "static part").Inc()
	r.RegisterCollector(func() []Family {
		return []Family{
			{Name: "shared_total", Type: "counter", Samples: []Sample{{Labels: []Label{{"src", "collector"}}, Value: 2}}},
			{Name: "dynamic_only", Type: "gauge", Help: "collector-only", Samples: []Sample{{Value: 7}}},
		}
	})
	fams := r.Gather()
	var shared, dynamic *Family
	for i := range fams {
		switch fams[i].Name {
		case "shared_total":
			shared = &fams[i]
		case "dynamic_only":
			dynamic = &fams[i]
		}
	}
	if shared == nil || len(shared.Samples) != 2 {
		t.Fatalf("shared_total not merged: %+v", shared)
	}
	if dynamic == nil || dynamic.Samples[0].Value != 7 {
		t.Fatalf("dynamic_only missing: %+v", dynamic)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				r.Counter("pitex_conc_total", "h").Inc()
				r.Gauge("pitex_conc_gauge", "h").Set(float64(j))
				if j%10 == 0 {
					_ = r.Gather()
					var sb strings.Builder
					_ = r.WriteText(&sb)
				}
			}
		}(i)
	}
	wg.Wait()
	if got := r.Counter("pitex_conc_total", "h").Value(); got != 8*200 {
		t.Fatalf("concurrent counter = %d, want %d", got, 8*200)
	}
}

func TestValidNames(t *testing.T) {
	valid := []string{"a", "pitex_requests_total", "ns:sub_metric", "_hidden", "A9"}
	for _, s := range valid {
		if !validMetricName(s) {
			t.Errorf("validMetricName(%q) = false, want true", s)
		}
	}
	invalid := []string{"", "9abc", "with-dash", "with space", "naïve"}
	for _, s := range invalid {
		if validMetricName(s) {
			t.Errorf("validMetricName(%q) = true, want false", s)
		}
	}
	if validLabelName("with:colon") {
		t.Error("label names must not contain colons")
	}
	if !validLabelName("shard_id") {
		t.Error("shard_id should be a valid label name")
	}
}

func TestRegisterBuildInfo(t *testing.T) {
	r := NewRegistry()
	RegisterBuildInfo(r)
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseText(sb.String())
	if err != nil {
		t.Fatalf("build info exposition does not parse: %v", err)
	}
	f, ok := fams["pitex_build_info"]
	if !ok || len(f.Samples) != 1 || f.Samples[0].Value != 1 {
		t.Fatalf("pitex_build_info = %+v, want single sample of 1", f)
	}
	if f.Samples[0].Labels["go_version"] == "" {
		t.Fatal("pitex_build_info missing go_version label")
	}
	if GetBuildInfo().GoVersion == "" {
		t.Fatal("GetBuildInfo returned empty GoVersion")
	}
}
