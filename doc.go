// Package pitex answers personalized social influential tag exploration
// (PITEX) queries: given a social network whose edges carry topic-aware
// influence probabilities, a tag vocabulary distributed over the topics,
// a target user u and a size k, it finds the size-k tag set W* maximizing
// u's expected influence spread E[I(u|W)] under the independent-cascade
// model.
//
// It is a from-scratch Go reproduction of Li, Tan, Fan and Zhang,
// "Discovering Your Selling Points: Personalized Social Influential Tags
// Exploration", SIGMOD 2017. The problem is NP-hard to approximate within
// any constant factor; every strategy here returns a (1-ε)/(1+ε)
// approximation with probability 1-1/δ (when sample budgets are left at
// their theoretical values).
//
// # Quick start
//
//	nb := pitex.NewNetworkBuilder(numUsers, numTopics)
//	nb.AddEdge(0, 1, pitex.TopicProb{Topic: 0, Prob: 0.4})
//	net, err := nb.Build()
//	// ...
//	model, _ := pitex.NewTagModel(numTags, numTopics)
//	model.SetTagTopic(0, 0, 0.6)
//	// ...
//	engine, err := pitex.NewEngine(net, model, pitex.Options{})
//	res, err := engine.Query(0, 3) // top-3 tags for user 0
//
// # Strategies
//
// The engine supports all seven estimation strategies evaluated in the
// paper: the online samplers MC, RR and Lazy (Sec. 4-5), the tree-based
// TIM baseline, and the index-based IndexEst, IndexEst+ and DelayMat
// (Sec. 6). Index strategies pay an offline construction cost inside
// NewEngine and answer queries orders of magnitude faster. All strategies
// run under best-effort exploration (Sec. 5.2) unless disabled.
//
// # Query execution
//
// A query is a best-first search (the paper's Algo 5) over partial tag
// sets: a max-heap ordered by the Lemma 8 upper bound pops the most
// promising prefix, expands it by one tag, and admits each child only if
// its bound still beats the k-th best full set found so far. Full-size
// children of one expansion are frontier-batched: the whole sibling group
// goes to the estimator in a single call, which lets index strategies
// share per-edge probability rows across siblings
// (sampling.FrontierProbeCache), answer up to 64 siblings per RR-graph
// traversal with uint64 membership-word bitsets, and terminate a
// sibling's posting-list scan early once a Hoeffding confidence bound
// proves it cannot beat the pruning threshold (sequential stopping, with
// the skipped tail replaced by an unbiased extrapolation). With
// CheapBounds, partial-set bounds collapse to masked reachability
// counts, memoized per live-topic mask for the duration of the query:
// children are bounded eagerly at expansion (so beaten branches never
// enter the heap), sibling masks resolve together in one word-parallel
// BFS, and deeper masks reuse memoized supersets as dominance bounds
// (reach counts are monotone in the mask) without any BFS at all.
// Result.Explain itemizes all of it per query — full sets estimated,
// bounds pruned, probe-cache hits, early stops, graphs skipped.
//
// # Performance model
//
// The approximation guarantee prices every estimate: an online
// estimation draws θ_W = λ/⌈I(u|W)⌉ samples with
// λ = (2+ε)/ε² · (ln δ + ln φ_K + ln 2), where φ_K counts the candidate
// sets the union bound must cover; the offline index samples θ RR-graphs
// the same way once, and every query afterwards only scans the target's
// posting list (Eq. 7). Query cost for index strategies is therefore
// O(|postings(u)| · scan cost), shrunk in practice by frequency pruning
// (INDEXEST+), frontier batching and sequential stopping — the stopping
// budget reuses the same ln δ + ln φ_K + ln 2 union-bound term, so early
// stops stay inside the query's (ε, δ) guarantee. Three knobs trade the
// formal guarantee for latency: MaxSamples / MaxIndexSamples cap the
// theoretical budgets, CheapBounds swaps sampled Lemma 8 bounds for
// looser one-BFS bounds, and DisableEarlyStop turns stopping off
// (making index estimates byte-identical to exhaustive scans). Measured
// numbers per PR live in BENCH_query.json; the repository-level design
// is documented in ARCHITECTURE.md.
//
// # Performance layout
//
// The offline RR-Graph index is arena-flattened: the θ sampled graphs are
// views into one contiguous set of backing arrays rather than θ separate
// heap objects, and the per-user postings lists share a single int32
// arena (see the internal/rrindex package documentation for the layout
// and the version-2 on-disk format; version-1 index files are still
// readable). Query evaluation caches p(e|W) once per distinct edge per
// estimation, and the best-first explorer reuses its heap, tag-set and
// traversal scratch across queries, so a steady-state query allocates
// almost nothing. Engine.IndexMemoryBytes is O(1) and exported by serve's
// /statsz as index_bytes, so operators can watch index RSS across live
// updates. Measured effects per PR are recorded in CHANGES.md and
// BENCH_query.json.
//
// # Sharding
//
// Options.IndexShards splits an index strategy's offline structure into S
// independent shards: users are hash-partitioned (stable in (user, S),
// independent of |V|), each shard samples θ_s ∝ |V_s| RR-Graphs whose
// targets lie in its partition, and every shard owns its own arena,
// postings and DelayMat counters. Build and incremental repair
// parallelize across shards under derived per-shard RNG streams, so
// results are deterministic per (Seed, IndexShards, Workers); queries
// scatter across shards (in parallel above a small work threshold, with a
// per-shard p(e|W) cache so workers never contend) and gather the
// per-shard coverage counts into Σ_s (hits_s/θ_s)·|V_s| — unbiased at
// every S, and byte-identical to the monolithic estimate at S=1.
//
// When to raise IndexShards: when offline build or repair latency is the
// bottleneck (each shard builds and repairs concurrently, and an update
// batch repairs only the shards whose postings contain a touched head —
// roughly 1/S of the index for a small batch), or when the single arena's
// allocation and compaction granularity is too coarse. Per-query latency
// is roughly flat in S on mid-sized graphs; sharding is a build/repair/
// memory-granularity lever, not a per-query one. One caveat: DelayMat
// counters span all of |V| per shard (any user can appear in any shard's
// graphs), so that strategy's — already tiny — counter footprint grows
// with S; sharding's memory benefits apply to the materialized index,
// whose arenas genuinely partition.
//
// Serialization compatibility: S=1 engines write the same v2 (index) and
// v1 (DelayMat) formats as before, readable by older binaries; S>1 writes
// format v3, which round-trips the shard layout (older readers reject it
// cleanly). v1/v2 files load as a single shard; a loaded index keeps its
// file's shard count regardless of Options.IndexShards. Per-shard sizes
// and repair counters are exported by serve's /statsz as index_shards and
// programmatically via Engine.IndexShardStats.
//
// # Serving
//
// An Engine is not safe for concurrent use, but Clone returns a worker
// sharing the offline index with fresh estimator scratch, and QueryCtx /
// QueryTopCtx / QueryWithPrefixCtx observe a context between best-first
// expansions so a serving layer can cancel abandoned work and enforce
// deadlines. The pitex/serve subpackage assembles these into a production
// query-serving subsystem — an engine-clone pool with admission control, a
// sharded result cache with in-flight request deduplication, and an
// HTTP/JSON surface with latency histograms (pool → cache → estimator; see
// the serve package documentation for the architecture and for which
// strategy to serve with). ServeOptions in this package holds its knobs;
// cmd/pitexserve is the ready-made entry point:
//
//	engine, _ := pitex.NewEngine(net, model, pitex.Options{Strategy: pitex.StrategyIndexPruned})
//	srv, _ := serve.New(engine, pitex.ServeOptions{})
//	http.ListenAndServe(":8437", srv.Handler())
//
// # Distributed serving
//
// When one machine can't hold or rebuild the index, the sharded layout
// runs as a fleet: cmd/pitexshard servers each build and own a slice of
// the IndexShards-way partition and answer per-shard probe work over
// HTTP/JSON, returning raw partials (hits, θ_s, |V_s|) rather than
// estimates; a coordinator — NewRemoteEngine plus serve.NewCoordinator,
// or cmd/pitexserve -shards — runs the same best-first exploration as
// the monolith but scatters every estimation to the fleet (via the
// pitex/distrib client) and gathers the partials into the identical
// unbiased sum, so all-healthy answers are byte-identical to the
// in-process sharded engine at the same seeds. RemoteProbe serializes
// both remotable probers (posterior tag sets and the best-effort
// partial-set bound), and RemoteEstimator is the narrow interface a
// transport must satisfy.
//
// Robustness: scatters carry per-shard deadlines with context
// propagation; replicas within a shard group are hedged after the
// group's observed latency quantile, with immediate failover on hard
// errors and exponential endpoint cooldowns. When a whole group is
// unreachable the gather re-normalizes over the responding |V_s| and
// the Result carries a DegradedCoverage block reporting the missing
// shards and the achieved ε = ε·√(θ_total/θ_resp) — honest about
// precision instead of silently wrong; degraded answers are never
// cached. Update batches route as deltas: the coordinator repairs its
// local engine, fans the batch to every shard server's /shard/update
// (each repairs only its own slice under a generation-derived RNG
// stream, idempotent on retry), and bumps the cluster generation that
// keys caches; shard servers double-buffer the previous generation so
// in-flight queries drain across the swap.
//
// # Live graph updates
//
// The paper's offline structures assume a frozen network; production
// social graphs mutate constantly. Engine.ApplyUpdates absorbs a batched
// UpdateBatch — edge insertions and deletions, topic-probability changes,
// new-user appends — by incrementally repairing the index instead of
// rebuilding it: only the RR-Graphs whose sampled edges are touched by
// the batch are re-sampled (DelayMat counters are patched), which is
// 10x+ faster than NewEngine for batches touching ≤1% of edges while
// keeping the (1-ε) estimation guarantees. The result is a NEW engine of
// the next Generation; the old one keeps answering over the pre-update
// network, so a serving layer can hot-swap with zero downtime. The
// dynamic subpackage stages mutations (dynamic.Overlay) and publishes
// generations atomically (dynamic.Updater) for programs embedding an
// engine directly; package serve implements the same publish-and-drain
// pattern natively at its pool layer, behind POST /admin/update with
// generation-keyed caching. See the
// dynamic package documentation for the repair architecture and for when
// a full rebuild is the better call.
//
// # Observability
//
// Query results carry Result.Explain, the per-query EXPLAIN: which
// strategy ran, how many full sets and partial bounds the best-first
// loop estimated, what was pruned (unsupported prefixes, Lemma 8
// bounds), frontier expansions, samples drawn, edge probes evaluated
// with the probe-cache hit ratio, and RR-graphs checked versus pruned.
// The pitex/obsv subpackage supplies the plumbing shared by the serving
// binaries: a dependency-free metrics registry with Prometheus text
// exposition, nil-safe request tracing with cross-process propagation
// (X-Pitex-Trace), build-info reporting, and slog helpers that stamp
// records with the active trace ID. Package serve wires both into
// /metrics, /tracez and the ?trace=1 / ?explain=1 query parameters.
//
// # Analytics sweeps
//
// Beyond per-query serving, the pitex/analytics subpackage runs the
// whole-population workload: one query per user (or per cohort member),
// reduced into leaderboards — the top-N users by E[I(u|W*)] and the
// tag-frequency histogram across optimal selling points. Sweeps are
// chunked over fresh engine clones, which makes the output deterministic
// per (Seed, Options) regardless of worker count, and checkpointed to
// versioned JSON so a killed sweep resumes to byte-identical output.
// Engine.QueryAllCtx is the one-shot, in-memory variant (cancellable
// batch fan-out, pitex.RunBatchCtx underneath); analytics.Run adds
// persistence and analytics.Manager adds background jobs with progress,
// ETA, cancellation and generation pinning. Package serve exposes jobs at
// POST /admin/jobs (pinned to the serving generation and reported stale
// after a hot-swap); cmd/pitexsweep is the batch CLI, whose -resume flag
// continues an interrupted run:
//
//	lb, _ := analytics.Run(ctx, engine, analytics.Options{
//		K: 3, TopN: 100, CheckpointPath: "sweep.ckpt", Resume: true,
//	})
//	_ = lb.WriteJSON(os.Stdout)
package pitex
