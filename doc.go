// Package pitex answers personalized social influential tag exploration
// (PITEX) queries: given a social network whose edges carry topic-aware
// influence probabilities, a tag vocabulary distributed over the topics,
// a target user u and a size k, it finds the size-k tag set W* maximizing
// u's expected influence spread E[I(u|W)] under the independent-cascade
// model.
//
// It is a from-scratch Go reproduction of Li, Tan, Fan and Zhang,
// "Discovering Your Selling Points: Personalized Social Influential Tags
// Exploration", SIGMOD 2017. The problem is NP-hard to approximate within
// any constant factor; every strategy here returns a (1-ε)/(1+ε)
// approximation with probability 1-1/δ (when sample budgets are left at
// their theoretical values).
//
// # Quick start
//
//	nb := pitex.NewNetworkBuilder(numUsers, numTopics)
//	nb.AddEdge(0, 1, pitex.TopicProb{Topic: 0, Prob: 0.4})
//	net, err := nb.Build()
//	// ...
//	model, _ := pitex.NewTagModel(numTags, numTopics)
//	model.SetTagTopic(0, 0, 0.6)
//	// ...
//	engine, err := pitex.NewEngine(net, model, pitex.Options{})
//	res, err := engine.Query(0, 3) // top-3 tags for user 0
//
// # Strategies
//
// The engine supports all seven estimation strategies evaluated in the
// paper: the online samplers MC, RR and Lazy (Sec. 4-5), the tree-based
// TIM baseline, and the index-based IndexEst, IndexEst+ and DelayMat
// (Sec. 6). Index strategies pay an offline construction cost inside
// NewEngine and answer queries orders of magnitude faster. All strategies
// run under best-effort exploration (Sec. 5.2) unless disabled.
//
// # Performance layout
//
// The offline RR-Graph index is arena-flattened: the θ sampled graphs are
// views into one contiguous set of backing arrays rather than θ separate
// heap objects, and the per-user postings lists share a single int32
// arena (see the internal/rrindex package documentation for the layout
// and the version-2 on-disk format; version-1 index files are still
// readable). Query evaluation caches p(e|W) once per distinct edge per
// estimation, and the best-first explorer reuses its heap, tag-set and
// traversal scratch across queries, so a steady-state query allocates
// almost nothing. Engine.IndexMemoryBytes is O(1) and exported by serve's
// /statsz as index_bytes, so operators can watch index RSS across live
// updates. Measured effects per PR are recorded in CHANGES.md and
// BENCH_query.json.
//
// # Serving
//
// An Engine is not safe for concurrent use, but Clone returns a worker
// sharing the offline index with fresh estimator scratch, and QueryCtx /
// QueryTopCtx / QueryWithPrefixCtx observe a context between best-first
// expansions so a serving layer can cancel abandoned work and enforce
// deadlines. The pitex/serve subpackage assembles these into a production
// query-serving subsystem — an engine-clone pool with admission control, a
// sharded result cache with in-flight request deduplication, and an
// HTTP/JSON surface with latency histograms (pool → cache → estimator; see
// the serve package documentation for the architecture and for which
// strategy to serve with). ServeOptions in this package holds its knobs;
// cmd/pitexserve is the ready-made entry point:
//
//	engine, _ := pitex.NewEngine(net, model, pitex.Options{Strategy: pitex.StrategyIndexPruned})
//	srv, _ := serve.New(engine, pitex.ServeOptions{})
//	http.ListenAndServe(":8437", srv.Handler())
//
// # Live graph updates
//
// The paper's offline structures assume a frozen network; production
// social graphs mutate constantly. Engine.ApplyUpdates absorbs a batched
// UpdateBatch — edge insertions and deletions, topic-probability changes,
// new-user appends — by incrementally repairing the index instead of
// rebuilding it: only the RR-Graphs whose sampled edges are touched by
// the batch are re-sampled (DelayMat counters are patched), which is
// 10x+ faster than NewEngine for batches touching ≤1% of edges while
// keeping the (1-ε) estimation guarantees. The result is a NEW engine of
// the next Generation; the old one keeps answering over the pre-update
// network, so a serving layer can hot-swap with zero downtime. The
// dynamic subpackage stages mutations (dynamic.Overlay) and publishes
// generations atomically (dynamic.Updater) for programs embedding an
// engine directly; package serve implements the same publish-and-drain
// pattern natively at its pool layer, behind POST /admin/update with
// generation-keyed caching. See the
// dynamic package documentation for the repair architecture and for when
// a full rebuild is the better call.
package pitex
