package pitex_test

// End-to-end smoke test at the Table 2 dataset sizes: builds every
// synthetic dataset at full scale and answers one index-backed query on
// each. Guarded by -short because full twitter generation takes seconds.

import (
	"testing"

	"pitex"
)

func TestFullScaleDatasetsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale datasets skipped in -short mode")
	}
	wantUsers := map[string]int{
		"lastfm": 1300, "diggs": 15000, "dblp": 50000, "twitter": 200000,
	}
	for _, name := range pitex.DatasetNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			net, model, err := pitex.GenerateDataset(name, 1)
			if err != nil {
				t.Fatalf("GenerateDataset: %v", err)
			}
			if net.NumUsers() != wantUsers[name] {
				t.Fatalf("users = %d, want %d", net.NumUsers(), wantUsers[name])
			}
			en, err := pitex.NewEngine(net, model, pitex.Options{
				Strategy:        pitex.StrategyIndexPruned,
				Seed:            1,
				MaxSamples:      1000,
				MaxIndexSamples: 30000,
				CheapBounds:     true,
			})
			if err != nil {
				t.Fatalf("NewEngine: %v", err)
			}
			u := net.UsersByGroup()["high"][0]
			// k=2 keeps the dblp tag space (C(276,2) = 38k pairs) tractable.
			res, err := en.Query(u, 2)
			if err != nil {
				t.Fatalf("Query: %v", err)
			}
			if len(res.Tags) != 2 || res.Influence < 1 {
				t.Fatalf("degenerate result: %+v", res)
			}
			t.Logf("%s: user %d -> %v (influence %.1f, %v, index %.1f MB in %v)",
				name, u, res.TagNames, res.Influence, res.Elapsed,
				float64(en.IndexMemoryBytes())/(1<<20), en.IndexBuildTime)
		})
	}
}
