package pitex

import (
	"fmt"

	"pitex/internal/datasets"
)

// GenerateDataset builds one of the four synthetic benchmark datasets
// ("lastfm", "diggs", "dblp", "twitter") standing in for the paper's
// corpora (Table 2). Construction is deterministic per seed; see DESIGN.md
// for how each synthetic dataset preserves the behaviour of the corpus it
// replaces.
func GenerateDataset(name string, seed uint64) (*Network, *TagModel, error) {
	d, err := datasets.Load(name, seed)
	if err != nil {
		return nil, nil, err
	}
	return &Network{g: d.Graph}, &TagModel{m: d.Model}, nil
}

// DatasetNames lists the available synthetic datasets in Table 2 order.
func DatasetNames() []string { return datasets.Names() }

// DatasetSpec is an explicit synthetic-dataset recipe, for scaled-down
// variants (CI-sized experiments) and for sweeps over |Ω| and |Z| like the
// paper's Fig. 12.
type DatasetSpec struct {
	Name          string
	Users, Edges  int
	Topics, Tags  int
	TopicsPerEdge int
	MaxProb       float64
	Reciprocity   float64
	// LearnFromLog runs the TIC simulate-and-learn pipeline instead of
	// direct probability assignment (the lastfm path).
	LearnFromLog bool
}

// BaseDatasetSpec returns the named dataset's standard recipe, ready to be
// modified and passed to GenerateDatasetSpec.
func BaseDatasetSpec(name string) (DatasetSpec, error) {
	s, ok := datasets.Specs()[name]
	if !ok {
		return DatasetSpec{}, fmt.Errorf("pitex: unknown dataset %q", name)
	}
	return DatasetSpec{
		Name: s.Name, Users: s.V, Edges: s.E,
		Topics: s.Topics, Tags: s.Tags,
		TopicsPerEdge: s.TopicsPerEdge, MaxProb: s.MaxProb,
		Reciprocity: s.Reciprocity, LearnFromLog: s.LearnFromLog,
	}, nil
}

// Scaled returns a copy with Users and Edges multiplied by f (minimum 16
// users), preserving |E|/|V| and all model dimensions.
func (s DatasetSpec) Scaled(f float64) DatasetSpec {
	s.Users = int(float64(s.Users) * f)
	s.Edges = int(float64(s.Edges) * f)
	if s.Users < 16 {
		s.Users = 16
	}
	if s.Edges < s.Users {
		s.Edges = s.Users
	}
	return s
}

// GenerateDatasetSpec builds a dataset from an explicit recipe,
// deterministically per seed.
func GenerateDatasetSpec(spec DatasetSpec, seed uint64) (*Network, *TagModel, error) {
	d, err := datasets.BuildSpec(datasets.Spec{
		Name: spec.Name, V: spec.Users, E: spec.Edges,
		Topics: spec.Topics, Tags: spec.Tags,
		TopicsPerEdge: spec.TopicsPerEdge, MaxProb: spec.MaxProb,
		Reciprocity: spec.Reciprocity, LearnFromLog: spec.LearnFromLog,
		TagsPerTopicFit: 2,
	}, seed)
	if err != nil {
		return nil, nil, err
	}
	return &Network{g: d.Graph}, &TagModel{m: d.Model}, nil
}

// Researcher is one subject of the planted case study (the stand-in for
// the paper's Table 4 survey).
type Researcher struct {
	Name string
	User int
	// HomeTopics are the planted research areas; a returned tag counts as
	// accurate when its dominant topic is one of them.
	HomeTopics []int
}

// GenerateCaseStudy builds the planted-ground-truth academic network: 8
// researcher hubs whose influence concentrates on known home topics, with
// named tags. Accuracy of a query result can be scored with CaseAccuracy.
func GenerateCaseStudy(seed uint64) (*Network, *TagModel, []Researcher, error) {
	cs, err := datasets.BuildCaseStudy(seed)
	if err != nil {
		return nil, nil, nil, err
	}
	rs := make([]Researcher, len(cs.Researchers))
	for i, r := range cs.Researchers {
		home := make([]int, len(r.HomeTopics))
		for j, h := range r.HomeTopics {
			home[j] = int(h)
		}
		rs[i] = Researcher{Name: r.Name, User: int(r.User), HomeTopics: home}
	}
	return &Network{g: cs.Dataset.Graph}, &TagModel{m: cs.Dataset.Model}, rs, nil
}

// CaseAccuracy scores a case-study answer: the fraction of tags whose
// dominant topic is one of the researcher's home topics.
func CaseAccuracy(model *TagModel, r Researcher, tags []int) float64 {
	if len(tags) == 0 {
		return 0
	}
	hits := 0
	for _, w := range tags {
		dom := int(model.m.DominantTopic(toTagIDs([]int{w})[0]))
		for _, home := range r.HomeTopics {
			if dom == home {
				hits++
				break
			}
		}
	}
	return float64(hits) / float64(len(tags))
}
