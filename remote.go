package pitex

import (
	"context"
	"fmt"
	"math"
	"slices"

	"pitex/internal/bestfirst"
	"pitex/internal/enumerate"
	"pitex/internal/graph"
	"pitex/internal/rrindex"
	"pitex/internal/sampling"
)

// This file is the engine's seam for distributed serving: a coordinator
// process keeps the full network and tag model (cheap — the graph is the
// small part) and runs the ordinary best-first exploration, but every
// influence estimation is delegated through a RemoteEstimator to shard
// servers holding the RR-Graph index slices. The two prober kinds the
// explorer uses — the Eq. 1 posterior prober and the Lemma 8 upper-bound
// prober — are both pure functions of a per-topic float vector, so one
// RemoteProbe ships either across the wire and the shard replays it
// bit-identically (JSON round-trips float64 exactly in Go).

// RemoteProbe is a serialized edge prober: exactly one of the two forms
// is set. Posterior carries p(z|W) for the standard Eq. 1 prober;
// BoundSupported/BoundWeights carry a prepared Lemma 8 bound prober
// (see bestfirst.Prober.Spec and sampling.TopicBoundProber).
type RemoteProbe struct {
	Posterior      []float64 `json:"posterior,omitempty"`
	BoundSupported []bool    `json:"bound_supported,omitempty"`
	BoundWeights   []float64 `json:"bound_weights,omitempty"`
}

// Validate reports whether exactly one prober form is present.
func (p RemoteProbe) Validate() error {
	hasPost := len(p.Posterior) > 0
	hasBound := len(p.BoundSupported) > 0 || len(p.BoundWeights) > 0
	switch {
	case hasPost == hasBound:
		return fmt.Errorf("pitex: probe needs exactly one of posterior or bound state")
	case hasBound && len(p.BoundSupported) != len(p.BoundWeights):
		return fmt.Errorf("pitex: bound state lengths differ (%d supported, %d weights)",
			len(p.BoundSupported), len(p.BoundWeights))
	}
	return nil
}

// Prober materializes the probe against a graph.
func (p RemoteProbe) Prober(g *graph.Graph) (sampling.EdgeProber, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(p.Posterior) > 0 {
		return sampling.PosteriorProber{G: g, Posterior: p.Posterior}, nil
	}
	return sampling.TopicBoundProber{G: g, Supported: p.BoundSupported, Weights: p.BoundWeights}, nil
}

// RemoteEstimate is one scatter-gather estimation's outcome. When every
// shard responded, MissingShards is empty and the estimate is
// byte-identical to the in-process sharded estimator; otherwise the
// gather re-normalized over responding shards (see
// rrindex.GatherPartialsDegraded) and the θ fields quantify the loss.
type RemoteEstimate struct {
	Influence float64
	Samples   int64
	Theta     int64
	Reachable int
	// MissingShards lists shard ids that contributed nothing (deadline,
	// error, or generation skew), ascending.
	MissingShards []int
	// RespondingTheta and TotalTheta are Σθ_s over responding shards and
	// over the whole layout; equal when nothing is missing.
	RespondingTheta int64
	TotalTheta      int64
}

// RemoteEstimator scatters one influence estimation across shard
// holders and gathers the partial hits. Implementations must be safe for
// concurrent use (engine clones share one).
type RemoteEstimator interface {
	EstimateRemote(ctx context.Context, user int, probe RemoteProbe) (RemoteEstimate, error)
}

// DegradedCoverage reports that a query was answered with one or more
// index shards unreachable: the estimate is extrapolated from the
// responding shards and the effective accuracy guarantee weakens from
// TargetEpsilon to AchievedEpsilon ≈ ε·sqrt(θ_total/θ_responding) (the
// Chernoff sample-size bound solved for ε at the sample count actually
// consulted).
type DegradedCoverage struct {
	MissingShards   []int   `json:"missing_shards"`
	TargetEpsilon   float64 `json:"target_epsilon"`
	AchievedEpsilon float64 `json:"achieved_epsilon"`
	RespondingTheta int64   `json:"responding_theta"`
	TotalTheta      int64   `json:"total_theta"`
}

// NewRemoteEngine builds a coordinator engine: it validates and explores
// like NewEngine but owns no offline index — every estimation goes
// through remote. Only the index strategies distribute (INDEXEST,
// INDEXEST+); online strategies have no shards to scatter to, and
// DELAYEST's estimator consumes a persistent RNG stream whose state
// cannot be replayed across processes.
func NewRemoteEngine(net *Network, model *TagModel, opts Options, remote RemoteEstimator) (*Engine, error) {
	if net == nil || model == nil {
		return nil, fmt.Errorf("pitex: nil network or model")
	}
	if remote == nil {
		return nil, fmt.Errorf("pitex: nil remote estimator")
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	if opts.Strategy != StrategyIndex && opts.Strategy != StrategyIndexPruned {
		return nil, fmt.Errorf("pitex: remote serving supports %v and %v, not %v",
			StrategyIndex, StrategyIndexPruned, opts.Strategy)
	}
	if net.NumTopics() != model.NumTopics() {
		return nil, fmt.Errorf("pitex: network has %d topics, model has %d",
			net.NumTopics(), model.NumTopics())
	}
	if err := model.m.Validate(); err != nil {
		return nil, fmt.Errorf("pitex: %w", err)
	}
	en := &Engine{
		net:       net,
		model:     model,
		opts:      opts,
		remote:    remote,
		posterior: make([]float64, model.NumTopics()),
		probe:     sampling.NewProbeCache(net.g.NumEdges()),
	}
	en.est = en.newEstimator()
	en.explorer = bestfirst.NewExplorer(net.g, model.m, en.est)
	en.explorer.CheapBounds = opts.CheapBounds
	return en, nil
}

// IndexBuildOptions derives the rrindex build parameters an engine with
// these options would use, defaults applied — the contract a shard
// server must follow so its BuildShard output is byte-identical to the
// in-process engine's index. The model supplies the tag count entering
// the ln φ_K search-space bound.
func IndexBuildOptions(model *TagModel, opts Options) (rrindex.BuildOptions, error) {
	if model == nil {
		return rrindex.BuildOptions{}, fmt.Errorf("pitex: nil model")
	}
	if err := opts.Validate(); err != nil {
		return rrindex.BuildOptions{}, err
	}
	opts = opts.withDefaults()
	return rrindex.BuildOptions{
		Accuracy: sampling.Options{
			Epsilon:          opts.Epsilon,
			Delta:            opts.Delta,
			LogSearchSpace:   enumerate.LogPhiK(model.NumTags(), opts.MaxK),
			MaxSamples:       opts.MaxSamples,
			DisableEarlyStop: opts.DisableEarlyStop,
		},
		MaxIndexSamples: opts.MaxIndexSamples,
		Seed:            opts.Seed,
		TrackMembers:    opts.TrackUpdates,
	}, nil
}

// RepairSeed derives the base repair seed for an update generation —
// the same mix Engine.ApplyUpdates uses — so remote shard repairs draw
// the identical streams an in-process repair would.
func RepairSeed(seed, generation uint64) uint64 {
	return seed + generation*0x9e3779b97f4a7c15
}

// remoteAdapter bridges the best-first explorer to a RemoteEstimator: it
// is the engine's bestfirst.Estimator for remote engines, serializing
// each prober and accumulating degradation evidence across the many
// estimations of one query. Like every estimator it is per-engine scratch
// state — not safe for concurrent use, reset by begin() per query.
type remoteAdapter struct {
	en     *Engine
	remote RemoteEstimator

	//pitexlint:allow ctxflow -- query-scoped: begin() stores the caller's ctx, finish() clears it; never outlives a query
	ctx       context.Context
	err       error
	missing   map[int]bool
	respTheta int64
	totTheta  int64
}

func (ra *remoteAdapter) begin(ctx context.Context) {
	ra.ctx = ctx
	ra.err = nil
	ra.missing = nil
	ra.respTheta = 0
	ra.totTheta = 0
}

// finish returns the degradation report for the query just run (nil when
// every scatter was complete), or the first remote error.
func (ra *remoteAdapter) finish() (*DegradedCoverage, error) {
	if ra.err != nil {
		return nil, ra.err
	}
	if len(ra.missing) == 0 {
		return nil, nil
	}
	deg := &DegradedCoverage{
		TargetEpsilon:   ra.en.opts.Epsilon,
		AchievedEpsilon: ra.en.opts.Epsilon,
		RespondingTheta: ra.respTheta,
		TotalTheta:      ra.totTheta,
	}
	for s := range ra.missing {
		deg.MissingShards = append(deg.MissingShards, s)
	}
	slices.Sort(deg.MissingShards)
	if ra.respTheta > 0 && ra.totTheta > ra.respTheta {
		deg.AchievedEpsilon = ra.en.opts.Epsilon *
			math.Sqrt(float64(ra.totTheta)/float64(ra.respTheta))
	}
	return deg, nil
}

// EstimateProber implements bestfirst.Estimator by scattering the probe.
// After the first remote failure the adapter fast-fails every remaining
// estimation of the query (influence 1 prunes nothing incorrectly — the
// query is abandoned by finish anyway).
func (ra *remoteAdapter) EstimateProber(u graph.VertexID, prober sampling.EdgeProber) sampling.Result {
	if ra.err != nil {
		return sampling.Result{Influence: 1}
	}
	var probe RemoteProbe
	switch p := prober.(type) {
	case sampling.PosteriorProber:
		probe.Posterior = p.Posterior
	case bestfirst.Prober:
		probe.BoundSupported, probe.BoundWeights = p.Spec()
	default:
		ra.err = fmt.Errorf("pitex: prober %T is not remotable", prober)
		return sampling.Result{Influence: 1}
	}
	ctx := ra.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	est, err := ra.remote.EstimateRemote(ctx, int(u), probe)
	if err != nil {
		ra.err = err
		return sampling.Result{Influence: 1}
	}
	if len(est.MissingShards) > 0 {
		if ra.missing == nil {
			ra.missing = make(map[int]bool)
		}
		for _, s := range est.MissingShards {
			ra.missing[s] = true
		}
		// Report the worst coverage seen across the query's estimations.
		if ra.respTheta == 0 || est.RespondingTheta < ra.respTheta {
			ra.respTheta = est.RespondingTheta
		}
	}
	if est.TotalTheta > ra.totTheta {
		ra.totTheta = est.TotalTheta
	}
	return sampling.Result{
		Influence: est.Influence,
		Samples:   est.Samples,
		Theta:     est.Theta,
		Reachable: est.Reachable,
	}
}
