package pitex

import (
	"fmt"
	"runtime"
	"strings"
	"time"
)

// Strategy selects which influence estimator the engine uses. The paper
// evaluates all seven (Fig. 7-8).
type Strategy int

const (
	// StrategyLazy is lazy propagation sampling (paper Sec. 5.1), the
	// fastest online sampler; the default because it needs no offline
	// construction.
	StrategyLazy Strategy = iota
	// StrategyMC is Monte-Carlo forward sampling (Sec. 4).
	StrategyMC
	// StrategyRR is reverse-reachable-set sampling (Sec. 4).
	StrategyRR
	// StrategyTIM is the tree-based maximum-influence-path baseline; fast
	// but without an approximation guarantee.
	StrategyTIM
	// StrategyIndex is the offline RR-Graph index (Sec. 6.1, "IndexEst").
	StrategyIndex
	// StrategyIndexPruned adds the edge-cut filter-and-verify layer
	// (Sec. 6.2, "IndexEst+").
	StrategyIndexPruned
	// StrategyDelay is delay materialization (Sec. 6.3, "DelayMat"):
	// index-speed queries from a per-user-counter index that is orders of
	// magnitude smaller.
	StrategyDelay
)

// String returns the paper's name for the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyLazy:
		return "LAZY"
	case StrategyMC:
		return "MC"
	case StrategyRR:
		return "RR"
	case StrategyTIM:
		return "TIM"
	case StrategyIndex:
		return "INDEXEST"
	case StrategyIndexPruned:
		return "INDEXEST+"
	case StrategyDelay:
		return "DELAYMAT"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// NeedsIndex reports whether the strategy requires offline RR-Graph
// construction inside NewEngine.
func (s Strategy) NeedsIndex() bool {
	return s == StrategyIndex || s == StrategyIndexPruned || s == StrategyDelay
}

// ParseStrategy is the inverse of Strategy.String, case-insensitively
// accepting the paper names plus the short aliases the CLIs use
// ("index", "index+", "delay").
func ParseStrategy(name string) (Strategy, error) {
	switch strings.ToLower(name) {
	case "lazy":
		return StrategyLazy, nil
	case "mc":
		return StrategyMC, nil
	case "rr":
		return StrategyRR, nil
	case "tim":
		return StrategyTIM, nil
	case "indexest", "index":
		return StrategyIndex, nil
	case "indexest+", "index+":
		return StrategyIndexPruned, nil
	case "delaymat", "delay":
		return StrategyDelay, nil
	default:
		return 0, fmt.Errorf("pitex: unknown strategy %q", name)
	}
}

// Propagation selects the cascade model. The paper's main body uses the
// independent cascade (IC) model; footnote 1 notes the approaches extend to
// the linear threshold (LT) model, implemented here for the online
// strategies.
type Propagation int

const (
	// PropagationIC is the independent cascade model (default).
	PropagationIC Propagation = iota
	// PropagationLT is the linear threshold model with tag-aware weights
	// b(e|W) = p(e|W) / max(1, Σ_in p(e'|W)). Supported by the online
	// strategies: MC and Lazy dispatch to the threshold-based forward
	// sampler, RR to the reverse triggering-set sampler. The RR-Graph
	// index encodes IC possible worlds and rejects LT.
	PropagationLT
)

// String names the model.
func (p Propagation) String() string {
	if p == PropagationLT {
		return "LT"
	}
	return "IC"
}

// Options configures an Engine. The zero value gives the paper's default
// parameters with the Lazy strategy.
type Options struct {
	// Strategy selects the estimator (default StrategyLazy).
	Strategy Strategy
	// Propagation selects the cascade model (default PropagationIC).
	Propagation Propagation
	// Epsilon is the relative error ε of the (1-ε)/(1+ε) approximation.
	// Default 0.7, the paper's default.
	Epsilon float64
	// Delta controls the failure probability 1/δ. Default 1000.
	Delta float64
	// MaxK is the largest query size k the engine must support; it enters
	// the union bound (φ_K) of the sample sizes. Default 10, the paper's
	// K. Queries with k > MaxK are rejected.
	MaxK int
	// Seed makes every randomized component deterministic. Default 1.
	Seed uint64
	// MaxSamples caps θ_W per online estimation; 0 keeps the theoretical
	// Eq. 2 value. A cap trades the formal guarantee for bounded latency
	// (DESIGN.md Sec. 6).
	MaxSamples int64
	// MaxIndexSamples caps the offline θ of Eq. 7 for index strategies;
	// 0 keeps the theoretical value.
	MaxIndexSamples int64
	// IndexShards hash-partitions the users of an index strategy's offline
	// structure into this many independent shards, built and repaired in
	// parallel, with queries scattered across shards and gathered into the
	// same unbiased estimate. 0 or 1 keeps the single monolithic index
	// (whose estimates S=1 reproduces byte-for-byte). Raise it when
	// offline build/repair latency or the single arena's size becomes the
	// bottleneck; see the package documentation's Sharding section.
	// Ignored by online strategies and when loading a saved index (the
	// file's shard layout wins).
	IndexShards int
	// DisableBestEffort switches the query loop from best-effort
	// exploration (Sec. 5.2) to plain enumeration of all C(|Ω|,k) sets.
	DisableBestEffort bool
	// CheapBounds replaces sampled Lemma 8 upper bounds with one-BFS
	// reachability bounds: looser pruning, much cheaper per partial set.
	CheapBounds bool
	// DisableEarlyStop turns off adaptive stopping (ablation knob): the
	// Algo-2 martingale rule in online samplers, and the sequential
	// Hoeffding stopping the index strategies apply inside frontier
	// batches (terminating a sibling's scan once its confidence bound
	// proves it cannot beat the pruning threshold). Disabling it makes
	// index-strategy estimates byte-identical to exhaustive scans.
	DisableEarlyStop bool
	// TrackUpdates prepares the offline structures for incremental repair
	// by Engine.ApplyUpdates. The RR-Graph index strategies are always
	// repairable and ignore it; for DelayMat it records per-graph member
	// sets and targets, trading the strategy's tiny footprint for
	// patchable counters — without it, ApplyUpdates on a DelayMat engine
	// falls back to a full offline recount.
	TrackUpdates bool
}

// withDefaults fills unset fields with the paper's defaults.
func (o Options) withDefaults() Options {
	if o.Epsilon == 0 {
		o.Epsilon = 0.7
	}
	if o.Delta == 0 {
		o.Delta = 1000
	}
	if o.MaxK == 0 {
		o.MaxK = 10
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// ServeOptions configures the query-serving subsystem (package
// pitex/serve): how many engine clones answer queries, how much waiting
// traffic is admitted, and how results are cached. The zero value gives
// sensible production defaults; see WithDefaults.
type ServeOptions struct {
	// PoolSize is the number of engine clones serving queries
	// concurrently. Clones share the prototype engine's offline index, so
	// the marginal cost of a worker is only estimator scratch state.
	// Default runtime.GOMAXPROCS(0).
	PoolSize int
	// QueueDepth bounds how many requests may wait for a free engine
	// beyond the PoolSize in service. Requests arriving past
	// PoolSize+QueueDepth are rejected immediately with ErrOverloaded
	// (load shedding beats unbounded queueing). Default 4*PoolSize;
	// negative disables queueing entirely (shed as soon as every engine
	// is busy).
	QueueDepth int
	// QueueTimeout caps how long an admitted request waits for a free
	// engine before failing with ErrQueueTimeout. Default 5s; negative
	// disables the timeout.
	QueueTimeout time.Duration
	// QueryTimeout is the per-query deadline enforced through
	// Engine.QueryCtx once an engine is checked out; the explorer observes
	// it between best-first expansions. Estimations are decoupled from the
	// requesting client's cancellation (deduplicated requests share them),
	// so this deadline is what bounds work for disconnected clients.
	// Default 30s; negative disables the deadline.
	QueryTimeout time.Duration
	// CacheCapacity is the total number of results kept across all cache
	// shards. Default 4096; negative disables caching (in-flight
	// deduplication stays active).
	CacheCapacity int
	// CacheShards is the number of independently locked cache shards.
	// Default 16, rounded up to a power of two.
	CacheShards int
	// SweepCheckpointDir is the directory sweep jobs started over HTTP
	// (POST /admin/jobs) may persist checkpoints into: a request's
	// checkpoint_path must be a bare file name, joined under this
	// directory — never an arbitrary server path. Empty (the default)
	// rejects checkpointed jobs over HTTP entirely; programmatic callers
	// (analytics.Run, Server.StartSweep) are unaffected.
	SweepCheckpointDir string
}

// WithDefaults fills unset ServeOptions fields with their defaults. It is
// exported (unlike Options.withDefaults) because package serve applies it.
func (o ServeOptions) WithDefaults() ServeOptions {
	if o.PoolSize == 0 {
		o.PoolSize = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth == 0 {
		o.QueueDepth = 4 * o.PoolSize
	}
	if o.QueueTimeout == 0 {
		o.QueueTimeout = 5 * time.Second
	}
	if o.QueryTimeout == 0 {
		o.QueryTimeout = 30 * time.Second
	}
	if o.CacheCapacity == 0 {
		o.CacheCapacity = 4096
	}
	if o.CacheShards <= 0 {
		o.CacheShards = 16
	}
	return o
}

// Validate reports whether the serving options are usable.
func (o ServeOptions) Validate() error {
	if o.PoolSize < 0 {
		return fmt.Errorf("pitex: PoolSize = %d, want >= 0", o.PoolSize)
	}
	return nil
}

// Validate reports whether the options are usable.
func (o Options) Validate() error {
	o = o.withDefaults()
	if o.Epsilon <= 0 || o.Epsilon >= 1 {
		return fmt.Errorf("pitex: Epsilon = %v, want (0,1)", o.Epsilon)
	}
	if o.Delta <= 1 {
		return fmt.Errorf("pitex: Delta = %v, want > 1", o.Delta)
	}
	if o.MaxK < 1 {
		return fmt.Errorf("pitex: MaxK = %d, want >= 1", o.MaxK)
	}
	if o.Strategy < StrategyLazy || o.Strategy > StrategyDelay {
		return fmt.Errorf("pitex: unknown strategy %d", int(o.Strategy))
	}
	if o.MaxSamples < 0 || o.MaxIndexSamples < 0 {
		return fmt.Errorf("pitex: negative sample caps")
	}
	if o.IndexShards < 0 {
		return fmt.Errorf("pitex: IndexShards = %d, want >= 0", o.IndexShards)
	}
	if o.Propagation != PropagationIC && o.Propagation != PropagationLT {
		return fmt.Errorf("pitex: unknown propagation model %d", int(o.Propagation))
	}
	if o.Propagation == PropagationLT &&
		o.Strategy != StrategyMC && o.Strategy != StrategyLazy && o.Strategy != StrategyRR {
		return fmt.Errorf("pitex: the LT model requires an online strategy (MC, Lazy or RR; got %v)", o.Strategy)
	}
	return nil
}
