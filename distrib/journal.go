package distrib

import "sync"

// journal is the coordinator's bounded per-generation log of applied
// update batches (marshaled UpdateRequest bodies), the replay source for
// endpoints that missed a fan-out. Entries are contiguous in generation;
// once an endpoint's gap reaches past the oldest retained entry it can no
// longer be healed by replay and falls back to /shard/resync.
type journal struct {
	mu      sync.Mutex
	horizon int // max retained generations
	entries []journalEntry
}

type journalEntry struct {
	gen  uint64
	body []byte
}

func newJournal(horizon int) *journal {
	if horizon < 1 {
		horizon = 1
	}
	return &journal{horizon: horizon}
}

// put records the batch staged for gen. Re-staging the same generation
// (a fan-out that failed everywhere gets rebuilt and retried under the
// same number) replaces the entry; a gap in the sequence resets the
// journal, since replay through a hole is impossible anyway.
func (j *journal) put(gen uint64, body []byte) {
	j.mu.Lock()
	defer j.mu.Unlock()
	n := len(j.entries)
	switch {
	case n > 0 && gen == j.entries[n-1].gen:
		j.entries[n-1].body = body
	case n > 0 && gen == j.entries[n-1].gen+1, n == 0:
		j.entries = append(j.entries, journalEntry{gen, body})
	default:
		j.entries = append(j.entries[:0], journalEntry{gen, body})
	}
	if len(j.entries) > j.horizon {
		j.entries = append(j.entries[:0], j.entries[len(j.entries)-j.horizon:]...)
	}
}

// get returns the recorded body for gen.
func (j *journal) get(gen uint64) ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for i := range j.entries {
		if j.entries[i].gen == gen {
			return j.entries[i].body, true
		}
	}
	return nil, false
}

// covers reports whether every generation in [from, to] is retained,
// i.e. a replay can walk the whole gap.
func (j *journal) covers(from, to uint64) bool {
	if from > to {
		return true
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if len(j.entries) == 0 {
		return false
	}
	return j.entries[0].gen <= from && to <= j.entries[len(j.entries)-1].gen
}

func (j *journal) size() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.entries)
}
