package distrib

import (
	"fmt"

	"pitex"
	"pitex/internal/rrindex"
)

// Wire types of the shard-server protocol (HTTP/JSON). Floats survive the
// round-trip exactly — encoding/json emits the shortest representation
// that parses back to the same float64 — so shipping posteriors and
// gather partials as JSON loses no precision.

// EstimateRequest asks a shard server for its shards' partial hits under
// one serialized prober. Generation pins the index generation the
// coordinator is serving; a server that matches neither its current nor
// its previous generation answers 409 (the client counts its shards
// missing rather than mixing generations).
type EstimateRequest struct {
	User       int               `json:"user"`
	Generation uint64            `json:"generation"`
	Probe      pitex.RemoteProbe `json:"probe"`
}

// EstimateResponse carries one partial per shard the server owns.
type EstimateResponse struct {
	Generation uint64            `json:"generation"`
	Partials   []rrindex.Partial `json:"partials"`
}

// ShardInfo describes one owned shard in an InfoResponse.
type ShardInfo struct {
	Shard  int   `json:"shard"`
	Users  int   `json:"users"`
	Theta  int64 `json:"theta"`
	Graphs int   `json:"graphs"`
}

// InfoResponse is GET /shard/info: the server's place in the cluster
// layout. TotalShards and TotalUsers are layout-wide (every server holds
// the full network, only the index is partitioned); Shards covers the
// owned slice only.
type InfoResponse struct {
	Generation  uint64      `json:"generation"`
	TotalShards int         `json:"total_shards"`
	TotalUsers  int         `json:"total_users"`
	Strategy    string      `json:"strategy"`
	Ready       bool        `json:"ready"`
	Shards      []ShardInfo `json:"shards"`
}

// ShardCount is one shard's counter row (RR-Graph containment count for
// index strategies, DelayMat counter for DELAYEST).
type ShardCount struct {
	Shard int   `json:"shard"`
	Count int64 `json:"count"`
	Theta int64 `json:"theta"`
	Users int   `json:"users"`
}

// CountersResponse is GET /shard/counters?user=N.
type CountersResponse struct {
	Generation uint64       `json:"generation"`
	Counts     []ShardCount `json:"counts"`
}

// UpdateProb mirrors serve's /admin/update probability entry.
type UpdateProb struct {
	Topic int     `json:"topic"`
	Prob  float64 `json:"prob"`
}

// UpdateEdge mirrors serve's /admin/update edge entry.
type UpdateEdge struct {
	From  int          `json:"from"`
	To    int          `json:"to"`
	Probs []UpdateProb `json:"probs,omitempty"`
}

// UpdateRequest is POST /shard/update: the coordinator fans one staged
// batch to every shard server, keyed by the generation the cluster moves
// to. A server applies it only when Generation == current+1 (409
// otherwise), repairs the owned shards the routing decision selects, and
// keeps the previous generation double-buffered for in-flight queries.
type UpdateRequest struct {
	Generation  uint64       `json:"generation"`
	AddUsers    int          `json:"add_users,omitempty"`
	InsertEdges []UpdateEdge `json:"insert_edges,omitempty"`
	DeleteEdges []UpdateEdge `json:"delete_edges,omitempty"`
	SetEdges    []UpdateEdge `json:"set_edges,omitempty"`
}

// DeadlineHeader carries the caller's remaining deadline budget in
// integer milliseconds across the wire (context deadlines do not survive
// HTTP). Shard servers bound their handler context by it and reject
// requests whose budget is already spent before occupying a worker.
const DeadlineHeader = "X-Pitex-Deadline-Ms"

// ResyncShard is one owned shard slice inside a ResyncState snapshot:
// the serialized RR-index (index strategies) or DelayMat (DELAYEST)
// bytes plus the slice's user count.
type ResyncShard struct {
	Shard int    `json:"shard"`
	Users int    `json:"users"`
	Index []byte `json:"index,omitempty"`
	Delay []byte `json:"delay,omitempty"`
}

// ResyncState is the full-state transfer of GET/POST /shard/resync: a
// byte-exact snapshot of one shard server's current network and owned
// index slices at Generation. The reconciler copies it replica-to-replica
// when an endpoint has fallen behind the coordinator's journal horizon —
// a rebuild would be statistically valid but not byte-identical to its
// replicas, so recovery always transfers state from a caught-up sibling.
type ResyncState struct {
	Generation  uint64        `json:"generation"`
	TotalShards int           `json:"total_shards"`
	Strategy    string        `json:"strategy"`
	Network     []byte        `json:"network"`
	Shards      []ResyncShard `json:"shards"`
}

// ResyncResponse acknowledges a POST /shard/resync install.
type ResyncResponse struct {
	Generation uint64 `json:"generation"`
}

// UpdateResponse reports one server's repair outcome.
type UpdateResponse struct {
	Generation     uint64 `json:"generation"`
	GraphsRepaired int    `json:"graphs_repaired"`
	GraphsAppended int    `json:"graphs_appended"`
	ElapsedNs      int64  `json:"elapsed_ns"`
}

// BatchToRequest serializes a staged update batch into the wire form,
// stamped with the generation the cluster moves to.
func BatchToRequest(b *pitex.UpdateBatch, generation uint64) UpdateRequest {
	req := UpdateRequest{Generation: generation, AddUsers: b.AddedUsers()}
	toProbs := func(ps []pitex.TopicProb) []UpdateProb {
		out := make([]UpdateProb, len(ps))
		for i, p := range ps {
			out[i] = UpdateProb{Topic: p.Topic, Prob: p.Prob}
		}
		return out
	}
	for _, e := range b.Inserts() {
		req.InsertEdges = append(req.InsertEdges, UpdateEdge{From: e.From, To: e.To, Probs: toProbs(e.Probs)})
	}
	for _, d := range b.Deletes() {
		req.DeleteEdges = append(req.DeleteEdges, UpdateEdge{From: d[0], To: d[1]})
	}
	for _, e := range b.Retopics() {
		req.SetEdges = append(req.SetEdges, UpdateEdge{From: e.From, To: e.To, Probs: toProbs(e.Probs)})
	}
	return req
}

// RequestToBatch re-stages a wire update on the receiving side. Staging
// order matches serve's /admin/update handler (deletes, retopics,
// inserts) so both paths resolve identically.
func RequestToBatch(req UpdateRequest) (*pitex.UpdateBatch, error) {
	var b pitex.UpdateBatch
	if req.AddUsers != 0 {
		b.AddUsers(req.AddUsers)
	}
	toProbs := func(ps []UpdateProb) []pitex.TopicProb {
		out := make([]pitex.TopicProb, len(ps))
		for i, p := range ps {
			out[i] = pitex.TopicProb{Topic: p.Topic, Prob: p.Prob}
		}
		return out
	}
	for _, e := range req.DeleteEdges {
		b.DeleteEdge(e.From, e.To)
	}
	for _, e := range req.SetEdges {
		b.SetEdge(e.From, e.To, toProbs(e.Probs)...)
	}
	for _, e := range req.InsertEdges {
		b.InsertEdge(e.From, e.To, toProbs(e.Probs)...)
	}
	if b.Empty() {
		return nil, fmt.Errorf("distrib: empty update batch")
	}
	return &b, nil
}
