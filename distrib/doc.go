// Package distrib is the client half of pitex's distributed serving
// plane: a scatter-gather coordinator over shard servers, each holding a
// slice of the RR-Graph index (built with rrindex.BuildShard so the
// fleet's union is byte-identical to the monolithic sharded index).
//
// Topology: shard servers are arranged in replica groups — the endpoints
// of one group all serve the same shard set, and the groups together
// partition [0, S). One query scatters a serialized edge prober
// (pitex.RemoteProbe) to every group, each server answers with its
// shards' partial hits plus the θ_s/|V_s| gather metadata, and the
// client folds them with rrindex.GatherPartials: with every group
// responding, the estimate is bit-for-bit the in-process
// ShardedEstimator's.
//
// Robustness: every group fetch runs under a per-shard deadline; after
// an adaptive hedge delay (a latency-window quantile, clamped to the
// deadline) the fetch is hedged to the next replica, and a hard error
// fails over immediately. Endpoints accumulate consecutive-failure
// cooldowns so a dead replica stops being tried first. When a whole
// group misses the deadline, the gather degrades instead of failing:
// rrindex.GatherPartialsDegraded extrapolates over the responding
// shards' |V_s| and the answer carries the missing shard list and the
// achieved (weakened) ε — degraded but honest, never silently wrong.
//
// Updates ride the repair-routing delta path: the coordinator applies a
// batch locally (graph only), fans the same batch to every endpoint
// keyed by the next generation, and each server repairs only the owned
// shards the routing decision (rrindex.RepairShard) says the batch
// touched. Servers double-buffer the previous generation so queries
// in flight across the swap still answer; the client's generation stamp
// moves only after the fan-out completes.
//
// Self-healing: the client journals every applied delta body for the
// last Options.JournalHorizon generations, and a background reconciler
// (Options.ReconcileInterval) continuously compares each endpoint's
// generation to the head. An endpoint a few generations behind is
// replayed the exact missed bodies in order — because shard repair is a
// deterministic function of (state, body, generation), replay leaves the
// replica byte-identical to its siblings. An endpoint behind the journal
// horizon is healed by full-state transfer instead: the reconciler
// copies a serialized snapshot (GET /shard/resync) from an in-group
// sibling already at head and installs it on the straggler
// (POST /shard/resync) — a copy of healthy state, never a rebuild, so
// byte-identity holds there too. While lagging, an endpoint is excluded
// from scatter candidacy so queries never mix generations; heal attempts
// back off with capped exponential growth plus seeded jitter
// (Options.HealBackoff, Options.JitterSeed). Status and the Prometheus
// registration expose journal replays, resyncs, heal failures, and
// per-endpoint lag.
//
// Failure contract, end to end: a query answer is exact (all groups
// responded at one generation) or carries an explicit degraded block
// with the achieved ε — never silently wrong; and a fleet that stops
// failing converges back to the head generation without operator
// intervention or restarts. The internal/faultinject failpoints wired
// through roundTrip and the update fan-out (see cmd/pitexchaos) exist to
// prove both properties deterministically.
package distrib
