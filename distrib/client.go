package distrib

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"slices"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pitex"
	"pitex/internal/faultinject"
	"pitex/internal/rng"
	"pitex/internal/rrindex"
	"pitex/obsv"
)

// Options tunes the client's robustness machinery. The zero value is
// usable; withDefaults fills the blanks.
type Options struct {
	// ShardDeadline bounds one group fetch end to end — all attempts,
	// hedges included (default 2s). A group that cannot answer within it
	// is reported missing and the gather degrades.
	ShardDeadline time.Duration
	// HedgeMin floors the hedge delay (default 20ms): a hedge is never
	// sent sooner, even when the latency window says the group is faster.
	HedgeMin time.Duration
	// HedgeQuantile picks the latency-window quantile after which a
	// fetch is hedged to the next replica (default 0.9).
	HedgeQuantile float64
	// FailureCooldown is the base endpoint cooldown after a failure,
	// doubling per consecutive failure up to 2^5× (default 1s).
	FailureCooldown time.Duration
	// UpdateDeadline bounds one /shard/update fan-out call per endpoint
	// (default 60s — repairs re-sample RR-Graphs and are much slower than
	// queries).
	UpdateDeadline time.Duration
	// HTTPClient overrides the transport (default: a dedicated client
	// with sane connection pooling).
	HTTPClient *http.Client
	// JitterSeed seeds the per-endpoint backoff jitter (default 1).
	// Endpoints that failed together would otherwise cool down in
	// lockstep and retry as a thundering herd; the jitter spreads their
	// recovery probes while staying deterministic per (seed, URL).
	JitterSeed uint64
	// ReconcileInterval is the cadence of the background anti-entropy
	// reconciler that heals lagging endpoints (default 500ms; negative
	// disables the reconciler entirely).
	ReconcileInterval time.Duration
	// JournalHorizon bounds the per-generation update journal the
	// reconciler replays from (default 32 generations). An endpoint whose
	// gap reaches past the horizon is healed via /shard/resync instead.
	JournalHorizon int
	// HealBackoff is the base delay between failed heal attempts on one
	// endpoint (default 500ms), doubling per consecutive failure up to
	// 2^5× with the same per-endpoint jitter as the cooldown.
	HealBackoff time.Duration
}

func (o Options) withDefaults() Options {
	if o.ShardDeadline <= 0 {
		o.ShardDeadline = 2 * time.Second
	}
	if o.HedgeMin <= 0 {
		o.HedgeMin = 20 * time.Millisecond
	}
	if o.HedgeQuantile <= 0 || o.HedgeQuantile >= 1 {
		o.HedgeQuantile = 0.9
	}
	if o.FailureCooldown <= 0 {
		o.FailureCooldown = time.Second
	}
	if o.UpdateDeadline <= 0 {
		o.UpdateDeadline = 60 * time.Second
	}
	if o.HTTPClient == nil {
		o.HTTPClient = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 16,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	if o.JitterSeed == 0 {
		o.JitterSeed = 1
	}
	if o.ReconcileInterval == 0 {
		o.ReconcileInterval = 500 * time.Millisecond
	}
	if o.JournalHorizon <= 0 {
		o.JournalHorizon = 32
	}
	if o.HealBackoff <= 0 {
		o.HealBackoff = 500 * time.Millisecond
	}
	return o
}

// endpoint is one shard-server address with failure bookkeeping.
type endpoint struct {
	url string

	// gen is the endpoint's last-known applied generation, maintained by
	// the update fan-out and the reconciler. An endpoint with gen behind
	// the coordinator head is lagging: it would answer head-stamped
	// requests with 409, so the scatter path skips it until it heals.
	gen atomic.Uint64

	mu          sync.Mutex
	consecFails int
	coolUntil   time.Time
	jit         *rng.Source // backoff jitter stream; nil = no jitter
	healFails   int
	nextHeal    time.Time
}

// jitterLocked scales d by a uniform factor in [1, 1.5) drawn from the
// endpoint's own seeded stream, so replicas that failed together do not
// retry in lockstep. Without a stream (zero-value endpoints in tests) the
// delay stays exact. Caller holds e.mu.
func (e *endpoint) jitterLocked(d time.Duration) time.Duration {
	if e.jit == nil {
		return d
	}
	return time.Duration(float64(d) * (1 + 0.5*e.jit.Float64()))
}

func (e *endpoint) fail(now time.Time, base time.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.consecFails++
	n := e.consecFails
	if n > 6 {
		n = 6
	}
	e.coolUntil = now.Add(e.jitterLocked(base << uint(n-1)))
}

func (e *endpoint) succeed() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.consecFails = 0
	e.coolUntil = time.Time{}
}

func (e *endpoint) cooling(now time.Time) (bool, time.Time) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return now.Before(e.coolUntil), e.coolUntil
}

// healDue reports whether the reconciler may attempt a heal now (heal
// failures back off like fetch failures, with jitter).
func (e *endpoint) healDue(now time.Time) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return !now.Before(e.nextHeal)
}

func (e *endpoint) healFailed(now time.Time, base time.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.healFails++
	n := e.healFails
	if n > 6 {
		n = 6
	}
	e.nextHeal = now.Add(e.jitterLocked(base << uint(n-1)))
}

func (e *endpoint) healedOK() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.healFails = 0
	e.nextHeal = time.Time{}
}

// latWindow is a small ring of recent group latencies for the hedge
// quantile.
type latWindow struct {
	mu   sync.Mutex
	buf  [64]time.Duration
	n    int // filled entries, capped at len(buf)
	next int
}

func (w *latWindow) add(d time.Duration) {
	w.mu.Lock()
	w.buf[w.next] = d
	w.next = (w.next + 1) % len(w.buf)
	if w.n < len(w.buf) {
		w.n++
	}
	w.mu.Unlock()
}

// quantile returns the q-quantile of the window, or ok=false when empty.
func (w *latWindow) quantile(q float64) (time.Duration, bool) {
	w.mu.Lock()
	n := w.n
	tmp := make([]time.Duration, n)
	copy(tmp, w.buf[:n])
	w.mu.Unlock()
	if n == 0 {
		return 0, false
	}
	slices.Sort(tmp)
	i := int(q * float64(n))
	if i >= n {
		i = n - 1
	}
	return tmp[i], true
}

// group is one replica set: every endpoint serves the same shard ids.
type group struct {
	endpoints []*endpoint
	shards    []int
	lat       latWindow
}

// candidates orders the group's endpoints for an attempt sequence:
// healthy ones first (configured order), cooling ones last. Endpoints
// lagging behind the head generation are excluded outright — they would
// answer a head-stamped request with 409, so attempting them wastes the
// hedge budget; the reconciler heals them off the query path. When every
// replica is lagging or cooling the full list comes back anyway (lagging
// last) — probing is how a group recovers.
func (g *group) candidates(now time.Time, head uint64) []*endpoint {
	avail := make([]*endpoint, 0, len(g.endpoints))
	var cooling, lagging []*endpoint
	for _, ep := range g.endpoints {
		c, _ := ep.cooling(now)
		switch {
		case ep.gen.Load() < head:
			lagging = append(lagging, ep)
		case c:
			cooling = append(cooling, ep)
		default:
			avail = append(avail, ep)
		}
	}
	if len(avail)+len(cooling) == 0 {
		return lagging
	}
	return append(avail, cooling...)
}

// hedgeDelay derives the adaptive hedge trigger: the latency-window
// quantile, clamped to [HedgeMin, ShardDeadline/2]. An empty window (cold
// start) hedges aggressively at HedgeMin.
func (g *group) hedgeDelay(o Options) time.Duration {
	d, ok := g.lat.quantile(o.HedgeQuantile)
	if !ok || d < o.HedgeMin {
		d = o.HedgeMin
	}
	if max := o.ShardDeadline / 2; d > max {
		d = max
	}
	return d
}

// Client is the coordinator-side handle on a shard-server fleet. It
// implements pitex.RemoteEstimator and is safe for concurrent use.
type Client struct {
	opts   Options
	http   *http.Client
	groups []*group

	generation  atomic.Uint64
	totalShards int
	strategy    string

	// Last-known per-shard gather metadata, refreshed by every partial
	// that flows through (θ grows under repairs, |V_s| under AddUsers) —
	// the degraded gather's denominator and the achieved-ε report read
	// these.
	shardTheta []atomic.Int64
	shardUsers []atomic.Int64

	scatters       *obsv.Counter
	hedges         *obsv.Counter
	failovers      *obsv.Counter
	degraded       *obsv.Counter
	journalReplays *obsv.Counter
	resyncs        *obsv.Counter
	healFailures   *obsv.Counter

	// Self-healing machinery: the journal retains recent update bodies
	// for replay; the reconciler goroutine retries lagging endpoints.
	journal *journal
	stop    chan struct{}
	wg      sync.WaitGroup
	//pitexlint:allow ctxflow -- background reconciler lifetime, cancelled by Close; not a request context
	healCtx    context.Context
	healCancel context.CancelFunc
	closed     atomic.Bool
}

// Dial connects to a fleet: groups[i] lists the replica endpoints (URL or
// host:port) of one shard set. Dial polls each group's /shard/info until
// a replica reports Ready (shard servers build their index slices
// asynchronously) or ctx ends, then validates that the groups exactly
// partition [0, TotalShards) and agree on layout, strategy and
// generation.
func Dial(ctx context.Context, groupAddrs [][]string, opts Options) (*Client, error) {
	if len(groupAddrs) == 0 {
		return nil, fmt.Errorf("distrib: no shard groups")
	}
	opts = opts.withDefaults()
	c := &Client{
		opts: opts, http: opts.HTTPClient, totalShards: -1,
		scatters: obsv.NewCounter(), hedges: obsv.NewCounter(),
		failovers: obsv.NewCounter(), degraded: obsv.NewCounter(),
		journalReplays: obsv.NewCounter(), resyncs: obsv.NewCounter(),
		healFailures: obsv.NewCounter(),
		journal:      newJournal(opts.JournalHorizon),
		stop:         make(chan struct{}),
	}
	//pitexlint:allow ctxflow -- the healer must outlive Dial's ctx: it runs until Close, not until dialing ends
	c.healCtx, c.healCancel = context.WithCancel(context.Background())
	covered := make(map[int]int) // shard -> group index
	type pending struct {
		g    *group
		info *InfoResponse
	}
	var infos []pending
	for gi, addrs := range groupAddrs {
		if len(addrs) == 0 {
			return nil, fmt.Errorf("distrib: group %d has no endpoints", gi)
		}
		g := &group{}
		for _, a := range addrs {
			u := normalizeURL(a)
			ep := &endpoint{url: u}
			// Per-endpoint deterministic jitter stream keyed on (seed, URL).
			h := fnv.New64a()
			h.Write([]byte(u))
			ep.jit = rng.New(rng.Mix(opts.JitterSeed, h.Sum64()))
			g.endpoints = append(g.endpoints, ep)
		}
		info, err := c.awaitReady(ctx, g)
		if err != nil {
			return nil, fmt.Errorf("distrib: group %d (%s): %w", gi, strings.Join(addrs, ","), err)
		}
		if c.totalShards == -1 {
			c.totalShards = info.TotalShards
			c.strategy = info.Strategy
			c.generation.Store(info.Generation)
		} else {
			switch {
			case info.TotalShards != c.totalShards:
				return nil, fmt.Errorf("distrib: group %d has %d total shards, group 0 has %d",
					gi, info.TotalShards, c.totalShards)
			case info.Strategy != c.strategy:
				return nil, fmt.Errorf("distrib: group %d strategy %s, group 0 %s", gi, info.Strategy, c.strategy)
			case info.Generation != c.generation.Load():
				return nil, fmt.Errorf("distrib: group %d at generation %d, group 0 at %d",
					gi, info.Generation, c.generation.Load())
			}
		}
		for _, si := range info.Shards {
			if si.Shard < 0 || si.Shard >= c.totalShards {
				return nil, fmt.Errorf("distrib: group %d serves shard %d outside [0,%d)", gi, si.Shard, c.totalShards)
			}
			if prev, dup := covered[si.Shard]; dup {
				return nil, fmt.Errorf("distrib: shard %d served by both group %d and %d", si.Shard, prev, gi)
			}
			covered[si.Shard] = gi
			g.shards = append(g.shards, si.Shard)
		}
		slices.Sort(g.shards)
		c.groups = append(c.groups, g)
		infos = append(infos, pending{g, info})
	}
	if len(covered) != c.totalShards {
		var missing []int
		for s := 0; s < c.totalShards; s++ {
			if _, ok := covered[s]; !ok {
				missing = append(missing, s)
			}
		}
		return nil, fmt.Errorf("distrib: shards %v not served by any group", missing)
	}
	c.shardTheta = make([]atomic.Int64, c.totalShards)
	c.shardUsers = make([]atomic.Int64, c.totalShards)
	for _, p := range infos {
		for _, si := range p.info.Shards {
			c.shardTheta[si.Shard].Store(si.Theta)
			c.shardUsers[si.Shard].Store(int64(si.Users))
		}
	}
	// Every endpoint starts presumed-current; the fan-out, 409 responses
	// and the reconciler's probes keep the view honest from here on.
	for _, g := range c.groups {
		for _, ep := range g.endpoints {
			ep.gen.Store(c.generation.Load())
		}
	}
	if c.opts.ReconcileInterval > 0 {
		c.wg.Add(1)
		go c.reconcileLoop()
	}
	return c, nil
}

// Close stops the background reconciler and releases idle connections.
// In-flight calls finish; further heals are abandoned. Safe to call more
// than once.
func (c *Client) Close() {
	if c.closed.Swap(true) {
		return
	}
	close(c.stop)
	c.healCancel()
	c.wg.Wait()
	c.http.CloseIdleConnections()
}

func normalizeURL(addr string) string {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return strings.TrimRight(addr, "/")
}

// awaitReady polls a group's endpoints for a Ready /shard/info.
func (c *Client) awaitReady(ctx context.Context, g *group) (*InfoResponse, error) {
	var lastErr error
	for {
		for _, ep := range g.endpoints {
			info, err := c.getInfo(ctx, ep)
			if err != nil {
				lastErr = err
				continue
			}
			if info.Ready {
				return info, nil
			}
			lastErr = fmt.Errorf("%s still building its shards", ep.url)
		}
		select {
		case <-ctx.Done():
			if lastErr != nil {
				return nil, fmt.Errorf("%w (last: %v)", ctx.Err(), lastErr)
			}
			return nil, ctx.Err()
		case <-time.After(200 * time.Millisecond):
		}
	}
}

func (c *Client) getInfo(ctx context.Context, ep *endpoint) (*InfoResponse, error) {
	ctx, cancel := context.WithTimeout(ctx, c.opts.ShardDeadline)
	defer cancel()
	body, err := c.roundTrip(ctx, http.MethodGet, ep.url+"/shard/info", nil)
	if err != nil {
		return nil, err
	}
	var info InfoResponse
	if err := json.Unmarshal(body, &info); err != nil {
		return nil, fmt.Errorf("bad info from %s: %w", ep.url, err)
	}
	return &info, nil
}

// statusError is a non-2xx response, kept typed so callers can react to
// specific statuses (409 marks an endpoint's generation view stale).
type statusError struct {
	method, url string
	code        int
	msg         string
}

func (e *statusError) Error() string {
	return fmt.Sprintf("%s %s: status %d: %s", e.method, e.url, e.code, e.msg)
}

// responseStatus extracts the HTTP status behind err, or 0 when err is
// not a status error (transport failure, context end, injected fault).
func responseStatus(err error) int {
	var se *statusError
	if errors.As(err, &se) {
		return se.code
	}
	return 0
}

// roundTrip performs one HTTP exchange and returns the response body,
// mapping non-2xx statuses to errors carrying the server's message.
func (c *Client) roundTrip(ctx context.Context, method, url string, body []byte) ([]byte, error) {
	out := faultinject.Eval(ctx, faultinject.PointRoundTrip)
	if out.Err != nil {
		return nil, out.Err
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	// Ship the remaining deadline budget: context deadlines do not cross
	// HTTP, and the shard's admission control wants to shed requests
	// whose caller will have hung up before a worker frees up.
	if dl, ok := ctx.Deadline(); ok {
		ms := time.Until(dl).Milliseconds()
		if ms < 1 {
			ms = 1
		}
		req.Header.Set(DeadlineHeader, strconv.FormatInt(ms, 10))
	}
	// Propagate the trace across the wire so a shard's spans join the
	// coordinator's trace ID.
	if tr := obsv.TraceFrom(ctx); tr != nil {
		req.Header.Set(obsv.TraceHeader, obsv.FormatTraceHeader(tr.ID(), obsv.SpanFrom(ctx).ID()))
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		msg := strings.TrimSpace(string(data))
		if len(msg) > 200 {
			msg = msg[:200]
		}
		return nil, &statusError{method: method, url: url, code: resp.StatusCode, msg: msg}
	}
	if out.Corrupt {
		data = faultinject.CorruptBytes(data)
	}
	return data, nil
}

// maxResponseBytes caps a shard response read. Resync snapshots carry
// whole index slices, so the cap is far above the 16MB that bounds every
// other message type.
const maxResponseBytes = 256 << 20

// fetchGroup runs one hedged, failing-over fetch against a group: the
// first candidate is tried immediately, the next one after the adaptive
// hedge delay (straggler) or instantly on a hard error (dead replica),
// and so on down the candidate list; the first success wins. The whole
// sequence shares one ShardDeadline.
func (c *Client) fetchGroup(ctx context.Context, g *group, method, path string, body []byte) ([]byte, error) {
	ctx, cancel := context.WithTimeout(ctx, c.opts.ShardDeadline)
	defer cancel()
	cands := g.candidates(time.Now(), c.generation.Load())
	if len(cands) == 0 {
		return nil, fmt.Errorf("distrib: group has no endpoints")
	}
	type attempt struct {
		data []byte
		err  error
		ep   *endpoint
		dur  time.Duration
	}
	ch := make(chan attempt, len(cands))
	launch := func(ep *endpoint, hedged bool) {
		go func() {
			sp, sctx := obsv.StartSpan(ctx, "shard-rpc")
			sp.SetAttr("endpoint", ep.url)
			sp.SetAttr("path", path)
			if hedged {
				sp.SetAttr("hedge", true)
			}
			t0 := time.Now()
			data, err := c.roundTrip(sctx, method, ep.url+path, body)
			if err != nil {
				sp.SetAttr("error", err.Error())
			}
			sp.End()
			ch <- attempt{data, err, ep, time.Since(t0)}
		}()
	}
	launch(cands[0], false)
	next, inFlight := 1, 1
	hd := g.hedgeDelay(c.opts)
	timer := time.NewTimer(hd)
	defer timer.Stop()
	var firstErr error
	for inFlight > 0 {
		select {
		case a := <-ch:
			inFlight--
			if a.err == nil {
				a.ep.succeed()
				g.lat.add(a.dur)
				return a.data, nil
			}
			a.ep.fail(time.Now(), c.opts.FailureCooldown)
			if responseStatus(a.err) == http.StatusConflict {
				// The endpoint rejected our generation: its index view is
				// stale (or ahead after a lost fan-out ack). Zero the
				// cached generation so the reconciler probes and heals it
				// and the scatter path stops picking it meanwhile.
				a.ep.gen.Store(0)
			}
			if firstErr == nil {
				firstErr = a.err
			}
			if next < len(cands) {
				c.failovers.Add(1)
				launch(cands[next], false)
				next++
				inFlight++
			}
		case <-timer.C:
			if next < len(cands) {
				c.hedges.Add(1)
				launch(cands[next], true)
				next++
				inFlight++
				timer.Reset(hd)
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return nil, firstErr
}

// noteShard refreshes the last-known gather metadata from a partial.
func (c *Client) noteShard(p rrindex.Partial) {
	if p.Shard >= 0 && p.Shard < len(c.shardTheta) {
		c.shardTheta[p.Shard].Store(p.Theta)
		c.shardUsers[p.Shard].Store(int64(p.Users))
	}
}

func (c *Client) totalTheta() int64 {
	var t int64
	for i := range c.shardTheta {
		t += c.shardTheta[i].Load()
	}
	return t
}

func (c *Client) totalUsers() int {
	var u int64
	for i := range c.shardUsers {
		u += c.shardUsers[i].Load()
	}
	return int(u)
}

// EstimateRemote implements pitex.RemoteEstimator: scatter the probe to
// every group, gather the partials. With every group responding the
// result is byte-identical to the in-process sharded estimator
// (rrindex.GatherPartials); with groups missing it degrades via
// rrindex.GatherPartialsDegraded and reports which shards were absent.
// It fails outright only when no shard at all responded.
func (c *Client) EstimateRemote(ctx context.Context, user int, probe pitex.RemoteProbe) (pitex.RemoteEstimate, error) {
	psp, _ := obsv.StartSpan(ctx, "probe-marshal")
	body, err := json.Marshal(EstimateRequest{User: user, Generation: c.generation.Load(), Probe: probe})
	psp.End()
	if err != nil {
		return pitex.RemoteEstimate{}, err
	}
	c.scatters.Inc()
	ssp, ctx := obsv.StartSpan(ctx, "scatter")
	ssp.SetAttr("groups", len(c.groups))
	type groupResult struct {
		data []byte
		err  error
	}
	results := make([]groupResult, len(c.groups))
	var wg sync.WaitGroup
	for i, g := range c.groups {
		wg.Add(1)
		go func(i int, g *group) {
			defer wg.Done()
			data, err := c.fetchGroup(ctx, g, http.MethodPost, "/shard/estimate", body)
			results[i] = groupResult{data, err}
		}(i, g)
	}
	wg.Wait()
	ssp.End()

	gsp, _ := obsv.StartSpan(ctx, "gather")
	defer gsp.End()
	var partials []rrindex.Partial
	var missing []int
	var firstErr error
	for i, r := range results {
		if r.err == nil {
			var resp EstimateResponse
			if e := json.Unmarshal(r.data, &resp); e != nil {
				r.err = e
			} else {
				for _, p := range resp.Partials {
					c.noteShard(p)
					partials = append(partials, p)
				}
				continue
			}
		}
		if firstErr == nil {
			firstErr = r.err
		}
		missing = append(missing, c.groups[i].shards...)
	}
	if len(partials) == 0 {
		return pitex.RemoteEstimate{}, fmt.Errorf("distrib: no shard responded: %w", firstErr)
	}
	if len(missing) == 0 {
		r := rrindex.GatherPartials(partials)
		return pitex.RemoteEstimate{
			Influence: r.Influence, Samples: r.Samples, Theta: r.Theta, Reachable: r.Reachable,
			RespondingTheta: r.Theta, TotalTheta: r.Theta,
		}, nil
	}
	c.degraded.Inc()
	slices.Sort(missing)
	gsp.SetAttr("degraded", true)
	gsp.SetAttr("missing_shards", missing)
	r := rrindex.GatherPartialsDegraded(partials, c.totalUsers())
	return pitex.RemoteEstimate{
		Influence: r.Influence, Samples: r.Samples, Theta: r.Theta, Reachable: r.Reachable,
		MissingShards: missing, RespondingTheta: r.Theta, TotalTheta: c.totalTheta(),
	}, nil
}

// Counters scatters a counter lookup (RR-Graph containment counts, or
// DelayMat counters under DELAYEST) and returns the summed count plus the
// shards that did not respond.
func (c *Client) Counters(ctx context.Context, user int) (int64, []int, error) {
	path := fmt.Sprintf("/shard/counters?user=%d&generation=%d", user, c.generation.Load())
	type groupResult struct {
		data []byte
		err  error
	}
	results := make([]groupResult, len(c.groups))
	var wg sync.WaitGroup
	for i, g := range c.groups {
		wg.Add(1)
		go func(i int, g *group) {
			defer wg.Done()
			data, err := c.fetchGroup(ctx, g, http.MethodGet, path, nil)
			results[i] = groupResult{data, err}
		}(i, g)
	}
	wg.Wait()
	var total int64
	var missing []int
	var firstErr error
	responded := false
	for i, r := range results {
		var resp CountersResponse
		if r.err == nil {
			r.err = json.Unmarshal(r.data, &resp)
		}
		if r.err != nil {
			if firstErr == nil {
				firstErr = r.err
			}
			missing = append(missing, c.groups[i].shards...)
			continue
		}
		responded = true
		for _, cnt := range resp.Counts {
			total += cnt.Count
		}
	}
	if !responded {
		return 0, nil, fmt.Errorf("distrib: no shard responded: %w", firstErr)
	}
	slices.Sort(missing)
	return total, missing, nil
}

// EndpointUpdate is one endpoint's outcome of an Update fan-out.
type EndpointUpdate struct {
	URL            string `json:"url"`
	Generation     uint64 `json:"generation,omitempty"`
	GraphsRepaired int    `json:"graphs_repaired"`
	GraphsAppended int    `json:"graphs_appended"`
	Error          string `json:"error,omitempty"`
}

// Update fans one staged batch to EVERY endpoint of every group (each
// replica holds its own index copy and repairs it independently —
// deterministically, so replicas stay byte-identical). Failed endpoints
// are reported, not fatal: a replica that missed the update answers the
// new generation with 409, fails health checks, and the fleet serves
// degraded until it recovers. The caller advances SetGeneration only
// after this returns.
func (c *Client) Update(ctx context.Context, req UpdateRequest) ([]EndpointUpdate, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	// Journal the batch before delivery: whatever subset of endpoints
	// misses this fan-out, the reconciler replays the exact same body, so
	// replicas converge byte-identically. Re-staging the same generation
	// after a failed fan-out replaces the entry.
	c.journal.put(req.Generation, body)
	var eps []*endpoint
	for _, g := range c.groups {
		eps = append(eps, g.endpoints...)
	}
	out := make([]EndpointUpdate, len(eps))
	var wg sync.WaitGroup
	for i, ep := range eps {
		wg.Add(1)
		go func(i int, ep *endpoint) {
			defer wg.Done()
			ectx, cancel := context.WithTimeout(ctx, c.opts.UpdateDeadline)
			defer cancel()
			out[i] = EndpointUpdate{URL: ep.url}
			if fo := faultinject.Eval(ectx, faultinject.PointUpdateFanout); fo.Err != nil {
				ep.fail(time.Now(), c.opts.FailureCooldown)
				out[i].Error = fo.Err.Error()
				return
			}
			data, err := c.roundTrip(ectx, http.MethodPost, ep.url+"/shard/update", body)
			if err != nil {
				ep.fail(time.Now(), c.opts.FailureCooldown)
				if responseStatus(err) == http.StatusConflict {
					ep.gen.Store(0)
				}
				out[i].Error = err.Error()
				return
			}
			var resp UpdateResponse
			if err := json.Unmarshal(data, &resp); err != nil {
				out[i].Error = err.Error()
				return
			}
			ep.succeed()
			ep.gen.Store(resp.Generation)
			out[i].Generation = resp.Generation
			out[i].GraphsRepaired = resp.GraphsRepaired
			out[i].GraphsAppended = resp.GraphsAppended
		}(i, ep)
	}
	wg.Wait()
	failed := 0
	for _, o := range out {
		if o.Error != "" {
			failed++
		}
	}
	if failed == len(out) {
		return out, fmt.Errorf("distrib: update failed on every endpoint (first: %s)", out[0].Error)
	}
	return out, nil
}

// Register wires the client's robustness counters and fleet gauges into
// a metrics registry, so the coordinator's /metrics covers the remote
// path with no extra bookkeeping.
func (c *Client) Register(reg *obsv.Registry) {
	reg.RegisterCounter("pitex_remote_scatters_total",
		"Scatter-gather estimations issued to the shard fleet.", c.scatters)
	reg.RegisterCounter("pitex_remote_hedges_total",
		"Hedged shard fetches fired after the adaptive delay.", c.hedges)
	reg.RegisterCounter("pitex_remote_failovers_total",
		"Shard fetches retried on the next replica after a hard error.", c.failovers)
	reg.RegisterCounter("pitex_remote_degraded_answers_total",
		"Estimations answered with one or more shard groups missing.", c.degraded)
	reg.RegisterCounter("pitex_remote_journal_replays_total",
		"Missed update batches replayed to lagging endpoints from the journal.", c.journalReplays)
	reg.RegisterCounter("pitex_remote_resyncs_total",
		"Full-state /shard/resync transfers to endpoints behind the journal horizon.", c.resyncs)
	reg.RegisterCounter("pitex_remote_heal_failures_total",
		"Failed heal attempts on lagging endpoints (retried with backoff).", c.healFailures)
	reg.GaugeFunc("pitex_remote_lagging_endpoints",
		"Endpoints currently behind the head generation.",
		func() float64 { return float64(c.laggingCount()) })
	for _, g := range c.groups {
		for _, ep := range g.endpoints {
			ep := ep
			reg.GaugeFunc("pitex_remote_endpoint_lag",
				"Generations this endpoint is behind the coordinator head.",
				func() float64 {
					head := c.generation.Load()
					if g := ep.gen.Load(); g < head {
						return float64(head - g)
					}
					return 0
				}, obsv.Label{Key: "endpoint", Value: ep.url})
		}
	}
	reg.GaugeFunc("pitex_remote_generation",
		"Index generation currently stamped on remote requests.",
		func() float64 { return float64(c.generation.Load()) })
	reg.GaugeFunc("pitex_remote_total_theta",
		"Last-known Σθ_s across the fleet (the gather denominator).",
		func() float64 { return float64(c.totalTheta()) })
	reg.GaugeFunc("pitex_remote_total_users",
		"Last-known Σ|V_s| across the fleet.",
		func() float64 { return float64(c.totalUsers()) })
}

// SetGeneration advances the generation stamped on every subsequent
// request. Call it after a successful Update fan-out.
func (c *Client) SetGeneration(gen uint64) { c.generation.Store(gen) }

// Generation returns the generation currently stamped on requests.
func (c *Client) Generation() uint64 { return c.generation.Load() }

// TotalShards returns the cluster layout's shard count S.
func (c *Client) TotalShards() int { return c.totalShards }

// Strategy returns the fleet's estimation strategy name.
func (c *Client) Strategy() string { return c.strategy }

// laggingCount is the number of endpoints behind the head generation.
func (c *Client) laggingCount() int {
	head := c.generation.Load()
	n := 0
	for _, g := range c.groups {
		for _, ep := range g.endpoints {
			if ep.gen.Load() < head {
				n++
			}
		}
	}
	return n
}

// EndpointStatus is one endpoint's health row in Status.
type EndpointStatus struct {
	URL                 string `json:"url"`
	Generation          uint64 `json:"generation"`
	Lagging             bool   `json:"lagging,omitempty"`
	ConsecutiveFailures int    `json:"consecutive_failures"`
	CoolingMs           int64  `json:"cooling_ms,omitempty"`
}

// GroupStatus is one replica group's row in Status.
type GroupStatus struct {
	Shards       []int            `json:"shards"`
	HedgeDelayMs float64          `json:"hedge_delay_ms"`
	Endpoints    []EndpointStatus `json:"endpoints"`
}

// Status is the client's observability snapshot, exported by the
// coordinator's /statsz.
type Status struct {
	Generation      uint64        `json:"generation"`
	TotalShards     int           `json:"total_shards"`
	TotalUsers      int           `json:"total_users"`
	TotalTheta      int64         `json:"total_theta"`
	Strategy        string        `json:"strategy"`
	Scatters        int64         `json:"scatters"`
	Hedges          int64         `json:"hedges"`
	Failovers       int64         `json:"failovers"`
	DegradedAnswers int64         `json:"degraded_answers"`
	JournalReplays  int64         `json:"journal_replays"`
	Resyncs         int64         `json:"resyncs"`
	HealFailures    int64         `json:"heal_failures"`
	LaggingCount    int           `json:"lagging_endpoints"`
	JournalSize     int           `json:"journal_size"`
	Groups          []GroupStatus `json:"groups"`
}

// Status snapshots the fleet view.
func (c *Client) Status() Status {
	now := time.Now()
	st := Status{
		Generation:      c.generation.Load(),
		TotalShards:     c.totalShards,
		TotalUsers:      c.totalUsers(),
		TotalTheta:      c.totalTheta(),
		Strategy:        c.strategy,
		Scatters:        c.scatters.Value(),
		Hedges:          c.hedges.Value(),
		Failovers:       c.failovers.Value(),
		DegradedAnswers: c.degraded.Value(),
		JournalReplays:  c.journalReplays.Value(),
		Resyncs:         c.resyncs.Value(),
		HealFailures:    c.healFailures.Value(),
		LaggingCount:    c.laggingCount(),
		JournalSize:     c.journal.size(),
	}
	for _, g := range c.groups {
		gs := GroupStatus{
			Shards:       append([]int(nil), g.shards...),
			HedgeDelayMs: float64(g.hedgeDelay(c.opts)) / float64(time.Millisecond),
		}
		for _, ep := range g.endpoints {
			es := EndpointStatus{URL: ep.url, Generation: ep.gen.Load()}
			es.Lagging = es.Generation < st.Generation
			ep.mu.Lock()
			es.ConsecutiveFailures = ep.consecFails
			cool := ep.coolUntil
			ep.mu.Unlock()
			if cool.After(now) {
				es.CoolingMs = int64(cool.Sub(now) / time.Millisecond)
			}
			gs.Endpoints = append(gs.Endpoints, es)
		}
		st.Groups = append(st.Groups, gs)
	}
	return st
}
