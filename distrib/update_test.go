package distrib

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// updateShard is a fake shard endpoint that serves /shard/info and
// counts /shard/update deliveries, optionally failing them.
func updateShard(t *testing.T, shards []ShardInfo, totalShards int, hits *atomic.Int64, fail bool) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/shard/info", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(InfoResponse{
			TotalShards: totalShards, TotalUsers: 150,
			Strategy: "INDEXEST+", Ready: true, Shards: shards,
		})
	})
	mux.HandleFunc("/shard/update", func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		if fail {
			http.Error(w, `{"error":"disk full"}`, http.StatusInternalServerError)
			return
		}
		var req UpdateRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		json.NewEncoder(w).Encode(UpdateResponse{
			Generation: req.Generation, GraphsRepaired: 3, GraphsAppended: 1,
		})
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// TestUpdateFansToEveryEndpoint proves the delta path hits every replica
// of every group (each holds its own index copy), tolerates a minority
// failure, and that SetGeneration advances the stamp only when the
// caller says so.
func TestUpdateFansToEveryEndpoint(t *testing.T) {
	var h0a, h0b, h1 atomic.Int64
	s0 := []ShardInfo{{Shard: 0, Users: 100, Theta: 1000}}
	s1 := []ShardInfo{{Shard: 1, Users: 50, Theta: 500}}
	u0a := updateShard(t, s0, 2, &h0a, false)
	u0b := updateShard(t, s0, 2, &h0b, false)
	u1 := updateShard(t, s1, 2, &h1, true)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	c, err := Dial(ctx, [][]string{{u0a.URL, u0b.URL}, {u1.URL}}, Options{UpdateDeadline: 5 * time.Second})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(c.Close)
	if c.Generation() != 0 {
		t.Fatalf("fresh client generation = %d", c.Generation())
	}

	rows, err := c.Update(ctx, UpdateRequest{Generation: 1})
	if err != nil {
		t.Fatalf("Update with one failing endpoint should not be fatal: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d endpoint rows, want 3", len(rows))
	}
	if h0a.Load() != 1 || h0b.Load() != 1 || h1.Load() != 1 {
		t.Fatalf("delivery counts = %d/%d/%d, want 1 each", h0a.Load(), h0b.Load(), h1.Load())
	}
	okRows, failRows := 0, 0
	for _, row := range rows {
		if row.Error != "" {
			failRows++
			continue
		}
		okRows++
		if row.Generation != 1 || row.GraphsRepaired != 3 || row.GraphsAppended != 1 {
			t.Fatalf("healthy row: %+v", row)
		}
	}
	if okRows != 2 || failRows != 1 {
		t.Fatalf("rows: %d ok, %d failed; want 2/1", okRows, failRows)
	}

	// The stamp moves only via SetGeneration.
	if c.Generation() != 0 {
		t.Fatalf("generation advanced implicitly to %d", c.Generation())
	}
	c.SetGeneration(1)
	if c.Generation() != 1 {
		t.Fatalf("generation = %d after SetGeneration(1)", c.Generation())
	}
}

func TestUpdateAllEndpointsFailing(t *testing.T) {
	var h0, h1 atomic.Int64
	u0 := updateShard(t, []ShardInfo{{Shard: 0, Users: 100, Theta: 1000}}, 2, &h0, true)
	u1 := updateShard(t, []ShardInfo{{Shard: 1, Users: 50, Theta: 500}}, 2, &h1, true)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	c, err := Dial(ctx, [][]string{{u0.URL}, {u1.URL}}, Options{UpdateDeadline: 5 * time.Second})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(c.Close)
	if _, err := c.Update(ctx, UpdateRequest{Generation: 1}); err == nil {
		t.Fatal("update that reached no endpoint reported success")
	}
}
