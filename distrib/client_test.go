package distrib

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"pitex"
	"pitex/internal/rng"
	"pitex/internal/rrindex"
)

func TestEndpointCooldownDoubles(t *testing.T) {
	ep := &endpoint{url: "http://x"}
	now := time.Now()
	base := time.Second
	ep.fail(now, base)
	if c, until := ep.cooling(now); !c || until.Sub(now) != base {
		t.Fatalf("first failure cooldown = %v, want %v", until.Sub(now), base)
	}
	ep.fail(now, base)
	if _, until := ep.cooling(now); until.Sub(now) != 2*base {
		t.Fatalf("second failure cooldown = %v, want %v", until.Sub(now), 2*base)
	}
	for i := 0; i < 10; i++ {
		ep.fail(now, base)
	}
	if _, until := ep.cooling(now); until.Sub(now) != base<<5 {
		t.Fatalf("cooldown cap = %v, want %v", until.Sub(now), base<<5)
	}
	ep.succeed()
	if c, _ := ep.cooling(now); c {
		t.Fatal("success did not clear the cooldown")
	}
}

func TestLatWindowQuantile(t *testing.T) {
	var w latWindow
	if _, ok := w.quantile(0.9); ok {
		t.Fatal("empty window reported a quantile")
	}
	for i := 1; i <= 10; i++ {
		w.add(time.Duration(i) * time.Millisecond)
	}
	if d, ok := w.quantile(0.9); !ok || d != 10*time.Millisecond {
		t.Fatalf("p90 of 1..10ms = %v (%v)", d, ok)
	}
	if d, _ := w.quantile(0.5); d != 6*time.Millisecond {
		t.Fatalf("p50 of 1..10ms = %v", d)
	}
	// Overflow the ring: only the last 64 entries count.
	for i := 0; i < 200; i++ {
		w.add(time.Hour)
	}
	if d, _ := w.quantile(0.5); d != time.Hour {
		t.Fatalf("ring did not evict old samples: p50 = %v", d)
	}
}

func TestHedgeDelayClamps(t *testing.T) {
	o := Options{}.withDefaults()
	g := &group{}
	// Cold start: no latency samples → the floor.
	if d := g.hedgeDelay(o); d != o.HedgeMin {
		t.Fatalf("cold-start hedge delay = %v, want %v", d, o.HedgeMin)
	}
	// A slow window clamps to ShardDeadline/2.
	for i := 0; i < 64; i++ {
		g.lat.add(time.Minute)
	}
	if d := g.hedgeDelay(o); d != o.ShardDeadline/2 {
		t.Fatalf("slow-window hedge delay = %v, want %v", d, o.ShardDeadline/2)
	}
}

func TestCandidatesOrdering(t *testing.T) {
	now := time.Now()
	a, b, c := &endpoint{url: "a"}, &endpoint{url: "b"}, &endpoint{url: "c"}
	g := &group{endpoints: []*endpoint{a, b, c}}
	b.fail(now, time.Minute)
	got := g.candidates(now, 0)
	if got[0] != a || got[1] != c || got[2] != b {
		t.Fatalf("cooling endpoint not demoted: %v %v %v", got[0].url, got[1].url, got[2].url)
	}
	// All cooling: the full list still comes back (probing recovers them).
	a.fail(now, time.Minute)
	c.fail(now, time.Minute)
	if got := g.candidates(now, 0); len(got) != 3 {
		t.Fatalf("all-cooling candidates = %d, want 3", len(got))
	}
}

func TestCandidatesExcludeLagging(t *testing.T) {
	now := time.Now()
	a, b, c := &endpoint{url: "a"}, &endpoint{url: "b"}, &endpoint{url: "c"}
	g := &group{endpoints: []*endpoint{a, b, c}}
	a.gen.Store(2)
	b.gen.Store(1) // behind head: would 409 a head-stamped request
	c.gen.Store(2)
	got := g.candidates(now, 2)
	if len(got) != 2 || got[0] != a || got[1] != c {
		t.Fatalf("lagging endpoint not excluded: got %d candidates", len(got))
	}
	// A whole group behind still returns its endpoints — refusing to try
	// anything would turn one missed fan-out into a permanent outage.
	a.gen.Store(1)
	c.gen.Store(1)
	if got := g.candidates(now, 2); len(got) != 3 {
		t.Fatalf("all-lagging candidates = %d, want 3", len(got))
	}
}

func TestCooldownJitterIsDeterministicPerSeed(t *testing.T) {
	cool := func(seed uint64) []time.Duration {
		ep := &endpoint{url: "http://x", jit: rng.New(rng.Mix(seed, 42))}
		now := time.Now()
		var out []time.Duration
		for i := 0; i < 4; i++ {
			ep.fail(now, time.Second)
			_, until := ep.cooling(now)
			out = append(out, until.Sub(now))
		}
		return out
	}
	a, b := cool(7), cool(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed gave different jitter: %v vs %v", a, b)
		}
		base := time.Second << uint(i)
		if a[i] < base || a[i] >= base+base/2 {
			t.Fatalf("jittered cooldown %d = %v outside [%v, %v)", i, a[i], base, base+base/2)
		}
	}
	if c := cool(8); reflect.DeepEqual(a, c) {
		t.Fatalf("different seeds gave identical jitter: %v", a)
	}
}

func TestNormalizeURL(t *testing.T) {
	if got := normalizeURL("localhost:8501"); got != "http://localhost:8501" {
		t.Fatalf("normalizeURL = %q", got)
	}
	if got := normalizeURL("https://h:1/"); got != "https://h:1" {
		t.Fatalf("normalizeURL = %q", got)
	}
}

func TestUpdateWireRoundTrip(t *testing.T) {
	var b pitex.UpdateBatch
	b.AddUsers(3)
	b.InsertEdge(1, 2, pitex.TopicProb{Topic: 0, Prob: 0.5})
	b.DeleteEdge(4, 5)
	b.SetEdge(6, 7, pitex.TopicProb{Topic: 1, Prob: 0.25})
	req := BatchToRequest(&b, 7)
	if req.Generation != 7 || req.AddUsers != 3 {
		t.Fatalf("header lost: %+v", req)
	}
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	var decoded UpdateRequest
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	b2, err := RequestToBatch(decoded)
	if err != nil {
		t.Fatalf("RequestToBatch: %v", err)
	}
	if b2.AddedUsers() != 3 {
		t.Fatalf("AddedUsers = %d", b2.AddedUsers())
	}
	if !reflect.DeepEqual(b2.Inserts(), b.Inserts()) {
		t.Fatalf("inserts differ: %+v vs %+v", b2.Inserts(), b.Inserts())
	}
	if !reflect.DeepEqual(b2.Deletes(), b.Deletes()) {
		t.Fatalf("deletes differ: %+v vs %+v", b2.Deletes(), b.Deletes())
	}
	if !reflect.DeepEqual(b2.Retopics(), b.Retopics()) {
		t.Fatalf("retopics differ: %+v vs %+v", b2.Retopics(), b.Retopics())
	}
	if _, err := RequestToBatch(UpdateRequest{Generation: 1}); err == nil {
		t.Fatal("empty wire batch accepted")
	}
}

// fakeShard serves a minimal /shard/* protocol for client tests: a fixed
// info layout and canned estimate partials.
func fakeShard(t *testing.T, shards []ShardInfo, totalShards, totalUsers int, partials []rrindex.Partial) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/shard/info", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(InfoResponse{
			TotalShards: totalShards, TotalUsers: totalUsers,
			Strategy: "INDEXEST+", Ready: true, Shards: shards,
		})
	})
	mux.HandleFunc("/shard/estimate", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(EstimateResponse{Partials: partials})
	})
	mux.HandleFunc("/shard/counters", func(w http.ResponseWriter, r *http.Request) {
		counts := make([]ShardCount, len(shards))
		for i, s := range shards {
			counts[i] = ShardCount{Shard: s.Shard, Count: int64(10 * (s.Shard + 1)), Theta: s.Theta, Users: s.Users}
		}
		json.NewEncoder(w).Encode(CountersResponse{Counts: counts})
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func testProbe() pitex.RemoteProbe {
	return pitex.RemoteProbe{Posterior: []float64{0.5, 0.5}}
}

func TestDialValidatesPartition(t *testing.T) {
	s0 := fakeShard(t, []ShardInfo{{Shard: 0, Users: 100, Theta: 1000}}, 2, 150, nil)
	s1 := fakeShard(t, []ShardInfo{{Shard: 1, Users: 50, Theta: 500}}, 2, 150, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	c, err := Dial(ctx, [][]string{{s0.URL}, {s1.URL}}, Options{})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(c.Close)
	if c.TotalShards() != 2 || c.Strategy() != "INDEXEST+" {
		t.Fatalf("client state: S=%d strategy=%s", c.TotalShards(), c.Strategy())
	}
	st := c.Status()
	if st.TotalUsers != 150 || st.TotalTheta != 1500 {
		t.Fatalf("seeded totals: %+v", st)
	}

	// A hole in the partition is rejected.
	if _, err := Dial(ctx, [][]string{{s0.URL}}, Options{}); err == nil {
		t.Fatal("incomplete partition accepted")
	}
	// Overlap is rejected.
	if _, err := Dial(ctx, [][]string{{s0.URL}, {s0.URL}}, Options{}); err == nil {
		t.Fatal("overlapping partition accepted")
	}
	// No groups is rejected.
	if _, err := Dial(ctx, nil, Options{}); err == nil {
		t.Fatal("empty fleet accepted")
	}
}

func TestEstimateRemoteHealthyAndDegraded(t *testing.T) {
	p0 := []rrindex.Partial{{Shard: 0, Hits: 10, Samples: 20, Contained: 25, Theta: 1000, Users: 100}}
	p1 := []rrindex.Partial{{Shard: 1, Hits: 5, Samples: 9, Contained: 12, Theta: 500, Users: 50}}
	s0 := fakeShard(t, []ShardInfo{{Shard: 0, Users: 100, Theta: 1000}}, 2, 150, p0)
	s1 := fakeShard(t, []ShardInfo{{Shard: 1, Users: 50, Theta: 500}}, 2, 150, p1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	c, err := Dial(ctx, [][]string{{s0.URL}, {s1.URL}}, Options{ShardDeadline: time.Second})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(c.Close)

	want := rrindex.GatherPartials([]rrindex.Partial{p0[0], p1[0]})
	got, err := c.EstimateRemote(ctx, 3, testProbe())
	if err != nil {
		t.Fatalf("EstimateRemote: %v", err)
	}
	if got.Influence != want.Influence || got.Theta != want.Theta || len(got.MissingShards) != 0 {
		t.Fatalf("healthy estimate %+v, want gather %+v", got, want)
	}
	if got.RespondingTheta != got.TotalTheta {
		t.Fatalf("healthy estimate reports partial θ: %+v", got)
	}

	if n, missing, err := c.Counters(ctx, 3); err != nil || n != 10+20 || len(missing) != 0 {
		t.Fatalf("Counters = %d missing %v err %v", n, missing, err)
	}

	// Kill shard 1's only server: the answer degrades and says so.
	s1.Close()
	degraded, err := c.EstimateRemote(ctx, 3, testProbe())
	if err != nil {
		t.Fatalf("degraded EstimateRemote: %v", err)
	}
	wantDeg := rrindex.GatherPartialsDegraded([]rrindex.Partial{p0[0]}, 150)
	if degraded.Influence != wantDeg.Influence {
		t.Fatalf("degraded influence = %v, want %v", degraded.Influence, wantDeg.Influence)
	}
	if len(degraded.MissingShards) != 1 || degraded.MissingShards[0] != 1 {
		t.Fatalf("missing shards = %v, want [1]", degraded.MissingShards)
	}
	if degraded.RespondingTheta != 1000 || degraded.TotalTheta != 1500 {
		t.Fatalf("degraded θ report: %+v", degraded)
	}
	if st := c.Status(); st.DegradedAnswers == 0 {
		t.Fatal("degraded answer not counted")
	}

	// Both down: a hard error, not a silent floor estimate.
	s0.Close()
	if _, err := c.EstimateRemote(ctx, 3, testProbe()); err == nil {
		t.Fatal("all-shards-down estimate succeeded")
	}
}

func TestFetchGroupFailsOverToReplica(t *testing.T) {
	p0 := []rrindex.Partial{{Shard: 0, Hits: 1, Samples: 1, Contained: 1, Theta: 100, Users: 10}}
	good := fakeShard(t, []ShardInfo{{Shard: 0, Users: 10, Theta: 100}}, 1, 10, p0)
	// The dead replica listens and immediately closes, producing instant
	// hard errors (no hedge wait involved).
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	t.Cleanup(dead.Close)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	c, err := Dial(ctx, [][]string{{dead.URL, good.URL}}, Options{ShardDeadline: 2 * time.Second})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(c.Close)
	got, err := c.EstimateRemote(ctx, 1, testProbe())
	if err != nil {
		t.Fatalf("EstimateRemote with dead primary: %v", err)
	}
	if len(got.MissingShards) != 0 {
		t.Fatalf("failover still reported missing shards: %v", got.MissingShards)
	}
	st := c.Status()
	if st.Failovers == 0 {
		t.Fatal("failover not counted")
	}
	if st.Groups[0].Endpoints[0].ConsecutiveFailures == 0 {
		t.Fatal("dead replica has no failure bookkeeping")
	}
}

func TestHedgedRetryWinsOverSlowReplica(t *testing.T) {
	p0 := []rrindex.Partial{{Shard: 0, Hits: 1, Samples: 1, Contained: 1, Theta: 100, Users: 10}}
	var slowHit atomic.Int64
	info := InfoResponse{TotalShards: 1, TotalUsers: 10, Strategy: "INDEXEST+", Ready: true,
		Shards: []ShardInfo{{Shard: 0, Users: 10, Theta: 100}}}
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/shard/info" {
			json.NewEncoder(w).Encode(info)
			return
		}
		slowHit.Add(1)
		time.Sleep(2 * time.Second) // stuck straggler, well past the hedge delay
		json.NewEncoder(w).Encode(EstimateResponse{Partials: p0})
	}))
	t.Cleanup(slow.Close)
	fast := fakeShard(t, info.Shards, 1, 10, p0)

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	c, err := Dial(ctx, [][]string{{slow.URL, fast.URL}}, Options{
		ShardDeadline: 5 * time.Second,
		HedgeMin:      30 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(c.Close)
	t0 := time.Now()
	got, err := c.EstimateRemote(ctx, 1, testProbe())
	if err != nil {
		t.Fatalf("EstimateRemote: %v", err)
	}
	if elapsed := time.Since(t0); elapsed > 1500*time.Millisecond {
		t.Fatalf("hedge did not rescue the query: took %v", elapsed)
	}
	if len(got.MissingShards) != 0 {
		t.Fatalf("hedged answer degraded: %v", got.MissingShards)
	}
	if slowHit.Load() == 0 {
		t.Fatal("slow primary was never tried — hedging untested")
	}
	if c.Status().Hedges == 0 {
		t.Fatal("hedge not counted")
	}
}
