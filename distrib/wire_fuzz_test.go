package distrib

import (
	"encoding/json"
	"reflect"
	"testing"

	"pitex/internal/fixture"
)

// FuzzWireDecode exercises the shard-protocol wire decoding the servers
// and the client perform on bytes from the network: JSON into the wire
// structs, probe validation and materialization, and update re-staging.
// None of it may panic on arbitrary input, and the canonical form of an
// accepted update must be a fixed point of the re-staging round trip
// (RequestToBatch then BatchToRequest), since that is exactly the path a
// coordinator-staged batch takes through every shard server.
func FuzzWireDecode(f *testing.F) {
	f.Add([]byte(`{"user":3,"generation":1,"probe":{"posterior":[0.5,0.5]}}`))
	f.Add([]byte(`{"user":0,"probe":{"bound_supported":[true,false],"bound_weights":[1,0.25]}}`))
	f.Add([]byte(`{"probe":{"posterior":[1],"bound_weights":[1]}}`))
	f.Add([]byte(`{"generation":2,"add_users":1,"insert_edges":[{"from":9,"to":0,"probs":[{"topic":0,"prob":0.5}]}]}`))
	f.Add([]byte(`{"generation":2,"delete_edges":[{"from":0,"to":1}],"set_edges":[{"from":1,"to":2,"probs":[]}]}`))
	f.Add([]byte(`{"generation":1,"add_users":-4}`))
	f.Add([]byte(`{"generation":3,"total_shards":2,"strategy":"INDEXEST","network":"bm90IGEgZ3JhcGg=","shards":[{"shard":0,"users":1,"index":"AAAA"}]}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{}`))
	g := fixture.Graph()
	f.Fuzz(func(t *testing.T, data []byte) {
		var er EstimateRequest
		if err := json.Unmarshal(data, &er); err == nil {
			if err := er.Probe.Validate(); err == nil {
				if p, err := er.Probe.Prober(g); err != nil || p == nil {
					t.Fatalf("validated probe failed to materialize: %v", err)
				}
			}
		}

		var ur UpdateRequest
		if err := json.Unmarshal(data, &ur); err == nil {
			b, err := RequestToBatch(ur)
			if err == nil {
				canonical := BatchToRequest(b, ur.Generation)
				b2, err := RequestToBatch(canonical)
				if err != nil {
					t.Fatalf("canonical update rejected on re-staging: %v", err)
				}
				if again := BatchToRequest(b2, ur.Generation); !reflect.DeepEqual(canonical, again) {
					t.Fatalf("re-staging is not a fixed point:\n%+v\n%+v", canonical, again)
				}
			}
		}

		// The remaining wire shapes have no semantics beyond JSON, but the
		// client decodes them from untrusted responses — they must decode
		// or error, never panic.
		var ir InfoResponse
		_ = json.Unmarshal(data, &ir)
		var rs ResyncState
		_ = json.Unmarshal(data, &rs)
	})
}
