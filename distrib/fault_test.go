package distrib

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"pitex/internal/faultinject"
)

// TestRoundTripFaultInjection covers the client-side failpoint: error
// rules fail the call before any bytes move, corrupt rules mangle the
// response payload (so decode hardening downstream is exercised), and
// disabling restores clean traffic.
func TestRoundTripFaultInjection(t *testing.T) {
	var hits int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"generation":7}`))
	}))
	t.Cleanup(srv.Close)
	c := &Client{http: srv.Client(), opts: Options{}.withDefaults()}
	ctx := context.Background()

	// Error rule: the request never reaches the wire.
	if err := faultinject.Enable(1, []faultinject.Rule{
		{Point: faultinject.PointRoundTrip, Mode: faultinject.ModeError, Count: 1},
	}); err != nil {
		t.Fatalf("Enable: %v", err)
	}
	t.Cleanup(faultinject.Disable)
	_, err := c.roundTrip(ctx, http.MethodGet, srv.URL+"/shard/info", nil)
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if hits != 0 {
		t.Fatalf("injected error still reached the server (%d hits)", hits)
	}
	// The Count:1 schedule is spent: the next call goes through clean.
	data, err := c.roundTrip(ctx, http.MethodGet, srv.URL+"/shard/info", nil)
	if err != nil || !json.Valid(data) {
		t.Fatalf("post-schedule call: err=%v data=%q", err, data)
	}

	// Corrupt rule: the response arrives, but mangled — a JSON decode
	// downstream must fail rather than trust the payload.
	if err := faultinject.Enable(1, []faultinject.Rule{
		{Point: faultinject.PointRoundTrip, Mode: faultinject.ModeCorrupt, Count: 1},
	}); err != nil {
		t.Fatalf("Enable corrupt: %v", err)
	}
	data, err = c.roundTrip(ctx, http.MethodGet, srv.URL+"/shard/info", nil)
	if err != nil {
		t.Fatalf("corrupt round trip errored instead of mangling: %v", err)
	}
	if json.Valid(data) {
		t.Fatalf("corrupt fault produced valid JSON: %q", data)
	}

	faultinject.Disable()
	data, err = c.roundTrip(ctx, http.MethodGet, srv.URL+"/shard/info", nil)
	if err != nil || !json.Valid(data) {
		t.Fatalf("post-disable call: err=%v data=%q", err, data)
	}
}

// TestRoundTripShipsDeadlineHeader: a context deadline crosses the wire
// as X-Pitex-Deadline-Ms so shard-side admission can act on it.
func TestRoundTripShipsDeadlineHeader(t *testing.T) {
	var got string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got = r.Header.Get(DeadlineHeader)
		_, _ = w.Write([]byte(`{}`))
	}))
	t.Cleanup(srv.Close)
	c := &Client{http: srv.Client(), opts: Options{}.withDefaults()}

	ctx, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
	defer cancel()
	if _, err := c.roundTrip(ctx, http.MethodGet, srv.URL+"/shard/info", nil); err != nil {
		t.Fatalf("roundTrip: %v", err)
	}
	ms, err := strconv.ParseInt(got, 10, 64)
	if err != nil || ms < 1 || ms > 250 {
		t.Fatalf("deadline header = %q, want an integer in (0, 250]", got)
	}

	got = "unset"
	if _, err := c.roundTrip(context.Background(), http.MethodGet, srv.URL+"/shard/info", nil); err != nil {
		t.Fatalf("roundTrip: %v", err)
	}
	if got != "" {
		t.Fatalf("deadline-free request carried header %q", got)
	}
}
