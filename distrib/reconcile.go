package distrib

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// The anti-entropy reconciler. An endpoint that misses an update fan-out
// (crash, partition, overload) stays pinned at an old generation and
// answers head-stamped requests with 409 forever — the scatter path
// excludes it, but nothing would ever bring it back. The reconciler is
// that recovery path: a background loop that probes lagging endpoints
// (with per-endpoint jittered backoff between failed attempts) and heals
// them in one of two ways:
//
//   - Journal replay: when every generation in the endpoint's gap is
//     still retained in the coordinator's journal, the missed update
//     bodies are re-POSTed in order. Repairs are deterministic in
//     (batch, generation), so a replayed replica ends up byte-identical
//     to one that never missed the fan-out.
//   - Snapshot resync: when the gap reaches past the journal horizon,
//     the full state (network + owned index slices) is copied from an
//     in-group replica that is at head, via GET then POST /shard/resync.
//     Copying — never rebuilding — preserves byte-identity within the
//     group.

// reconcileLoop runs until Close, healing lagging endpoints every tick.
func (c *Client) reconcileLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.opts.ReconcileInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.reconcileOnce(time.Now())
		}
	}
}

// reconcileOnce scans the fleet and attempts one heal per lagging, due
// endpoint. Heals run sequentially on the reconciler goroutine: healing
// is rare and bandwidth-heavy (resync ships whole index slices), so one
// transfer at a time is the right degree of pressure on a recovering
// fleet.
func (c *Client) reconcileOnce(now time.Time) {
	head := c.generation.Load()
	for _, g := range c.groups {
		for _, ep := range g.endpoints {
			if ep.gen.Load() >= head || !ep.healDue(now) {
				continue
			}
			if err := c.healEndpoint(c.healCtx, g, ep, head); err != nil {
				c.healFailures.Inc()
				ep.healFailed(time.Now(), c.opts.HealBackoff)
			} else {
				ep.healedOK()
			}
		}
	}
}

// healEndpoint probes one lagging endpoint's true generation and closes
// its gap to head by journal replay or snapshot resync.
func (c *Client) healEndpoint(ctx context.Context, g *group, ep *endpoint, head uint64) error {
	info, err := c.getInfo(ctx, ep)
	if err != nil {
		return err
	}
	if !info.Ready {
		return fmt.Errorf("%s still building its shards", ep.url)
	}
	ep.gen.Store(info.Generation)
	if info.Generation >= head {
		return nil // caught up on its own (or our view was stale)
	}
	if c.journal.covers(info.Generation+1, head) {
		return c.replayJournal(ctx, ep, info.Generation, head)
	}
	return c.resyncFrom(ctx, g, ep, head)
}

// replayJournal re-POSTs the missed update bodies in generation order.
func (c *Client) replayJournal(ctx context.Context, ep *endpoint, from, to uint64) error {
	for gen := from + 1; gen <= to; gen++ {
		body, ok := c.journal.get(gen)
		if !ok {
			return fmt.Errorf("journal no longer covers generation %d", gen)
		}
		rctx, cancel := context.WithTimeout(ctx, c.opts.UpdateDeadline)
		data, err := c.roundTrip(rctx, http.MethodPost, ep.url+"/shard/update", body)
		cancel()
		if err != nil {
			return fmt.Errorf("replay of generation %d: %w", gen, err)
		}
		var resp UpdateResponse
		if err := json.Unmarshal(data, &resp); err != nil {
			return fmt.Errorf("replay of generation %d: bad response: %w", gen, err)
		}
		ep.gen.Store(resp.Generation)
		c.journalReplays.Inc()
	}
	ep.succeed()
	return nil
}

// resyncFrom copies the full shard state from a caught-up replica in the
// same group onto the lagging endpoint. With no in-group source at head
// (the whole group fell behind together, past the horizon) the heal
// fails and retries later — a sibling healed by replay becomes the
// source on a subsequent tick.
func (c *Client) resyncFrom(ctx context.Context, g *group, ep *endpoint, head uint64) error {
	var src *endpoint
	for _, other := range g.endpoints {
		if other != ep && other.gen.Load() >= head {
			src = other
			break
		}
	}
	if src == nil {
		return fmt.Errorf("no in-group source at generation %d to resync %s from", head, ep.url)
	}
	rctx, cancel := context.WithTimeout(ctx, c.opts.UpdateDeadline)
	defer cancel()
	snap, err := c.roundTrip(rctx, http.MethodGet, src.url+"/shard/resync", nil)
	if err != nil {
		src.fail(time.Now(), c.opts.FailureCooldown)
		return fmt.Errorf("snapshot from %s: %w", src.url, err)
	}
	data, err := c.roundTrip(rctx, http.MethodPost, ep.url+"/shard/resync", snap)
	if err != nil {
		return fmt.Errorf("install on %s: %w", ep.url, err)
	}
	var resp ResyncResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		return fmt.Errorf("install on %s: bad response: %w", ep.url, err)
	}
	ep.gen.Store(resp.Generation)
	ep.succeed()
	c.resyncs.Inc()
	return nil
}
