package distrib

import (
	"bytes"
	"testing"
)

func TestJournalPutGetCovers(t *testing.T) {
	j := newJournal(3)
	if _, ok := j.get(1); ok {
		t.Fatal("empty journal returned an entry")
	}
	if j.covers(1, 1) {
		t.Fatal("empty journal claims coverage")
	}
	if !j.covers(5, 4) {
		t.Fatal("empty range must be trivially covered")
	}

	j.put(1, []byte("a"))
	j.put(2, []byte("b"))
	j.put(3, []byte("c"))
	for gen, want := range map[uint64]string{1: "a", 2: "b", 3: "c"} {
		body, ok := j.get(gen)
		if !ok || !bytes.Equal(body, []byte(want)) {
			t.Fatalf("get(%d) = %q, %v; want %q", gen, body, ok, want)
		}
	}
	if !j.covers(1, 3) || !j.covers(2, 2) {
		t.Fatal("contiguous range not covered")
	}

	// Re-staging the newest generation replaces its body in place.
	j.put(3, []byte("c2"))
	if body, ok := j.get(3); !ok || string(body) != "c2" {
		t.Fatalf("re-staged gen 3 = %q, %v", body, ok)
	}
	if j.size() != 3 {
		t.Fatalf("size = %d after re-stage, want 3", j.size())
	}

	// The horizon evicts the oldest entry; replay past it is impossible.
	j.put(4, []byte("d"))
	if _, ok := j.get(1); ok {
		t.Fatal("gen 1 survived past the horizon")
	}
	if j.covers(1, 4) {
		t.Fatal("covers(1,4) true after gen 1 eviction")
	}
	if !j.covers(2, 4) {
		t.Fatal("retained window [2,4] not covered")
	}

	// A gap resets the journal: replay through a hole is impossible.
	j.put(9, []byte("z"))
	if j.size() != 1 {
		t.Fatalf("size = %d after gap reset, want 1", j.size())
	}
	if _, ok := j.get(4); ok {
		t.Fatal("pre-gap entry survived the reset")
	}
	if body, ok := j.get(9); !ok || string(body) != "z" {
		t.Fatalf("get(9) = %q, %v", body, ok)
	}

	// A degenerate horizon clamps to one retained entry.
	if one := newJournal(0); one.horizon != 1 {
		t.Fatalf("horizon 0 clamped to %d, want 1", one.horizon)
	}
}
