package pitex

import (
	"fmt"
	"time"

	"pitex/internal/bestfirst"
	"pitex/internal/enumerate"
	"pitex/internal/graph"
	"pitex/internal/rrindex"
	"pitex/internal/sampling"
)

// UpdateBatch stages a batch of network mutations for Engine.ApplyUpdates:
// edge insertions and deletions, topic-probability changes, and new-user
// appends. Batches are resolved and validated against the engine's network
// at apply time, so one batch can be staged once and applied to whichever
// engine generation is current. An UpdateBatch is not safe for concurrent
// mutation; the zero value is an empty batch.
type UpdateBatch struct {
	inserts  []stagedInsert
	deletes  [][2]int
	retopics []stagedRetopic
	addUsers int
}

type stagedInsert struct {
	from, to int
	probs    []TopicProb
}

type stagedRetopic struct {
	from, to int
	probs    []TopicProb
}

// InsertEdge stages a new influence edge from -> to with the given
// topic-wise probabilities. The endpoints may reference users added by
// AddUsers in the same batch.
func (b *UpdateBatch) InsertEdge(from, to int, probs ...TopicProb) {
	b.inserts = append(b.inserts, stagedInsert{from: from, to: to, probs: probs})
}

// DeleteEdge stages the removal of every live edge from -> to (parallel
// edges are independent channels and are all removed). Applying a batch
// whose deletion matches no live edge fails.
func (b *UpdateBatch) DeleteEdge(from, to int) {
	b.deletes = append(b.deletes, [2]int{from, to})
}

// SetEdge stages a topic-probability change: every live edge from -> to
// gets the given vector. Applying a batch whose change matches no live
// edge fails.
func (b *UpdateBatch) SetEdge(from, to int, probs ...TopicProb) {
	b.retopics = append(b.retopics, stagedRetopic{from: from, to: to, probs: probs})
}

// AddUsers stages appending n new users (with no edges yet; follow-up
// InsertEdge calls in the same batch may already reference them).
func (b *UpdateBatch) AddUsers(n int) {
	b.addUsers += n
}

// AddedUsers returns the net user count staged by AddUsers calls, so a
// staging layer can roll its user-count view back when applying the batch
// fails.
func (b *UpdateBatch) AddedUsers() int { return b.addUsers }

// StagedEdge is one staged insert or retopic operation, in the form the
// read accessors below expose so a coordinator can re-serialize a batch
// when fanning it out to shard servers.
type StagedEdge struct {
	From, To int
	Probs    []TopicProb
}

// Inserts returns the staged edge insertions in staging order. The Probs
// slices are shared with the batch; treat them as read-only.
func (b *UpdateBatch) Inserts() []StagedEdge {
	out := make([]StagedEdge, len(b.inserts))
	for i, ins := range b.inserts {
		out[i] = StagedEdge{From: ins.from, To: ins.to, Probs: ins.probs}
	}
	return out
}

// Deletes returns the staged (from, to) edge deletions in staging order.
func (b *UpdateBatch) Deletes() [][2]int {
	return append([][2]int(nil), b.deletes...)
}

// Retopics returns the staged topic-probability changes in staging order.
// The Probs slices are shared with the batch; treat them as read-only.
func (b *UpdateBatch) Retopics() []StagedEdge {
	out := make([]StagedEdge, len(b.retopics))
	for i, rt := range b.retopics {
		out[i] = StagedEdge{From: rt.from, To: rt.to, Probs: rt.probs}
	}
	return out
}

// Len returns the number of staged operations.
func (b *UpdateBatch) Len() int {
	n := len(b.inserts) + len(b.deletes) + len(b.retopics)
	if b.addUsers > 0 {
		n++
	}
	return n
}

// Empty reports whether nothing is staged.
func (b *UpdateBatch) Empty() bool { return b.Len() == 0 }

// UpdateStats reports what one ApplyUpdates call did.
type UpdateStats struct {
	// Generation is the new engine's update generation.
	Generation uint64 `json:"generation"`
	// EdgesInserted, EdgesDeleted, EdgesRetopiced and UsersAdded count the
	// applied mutations.
	EdgesInserted  int `json:"edges_inserted"`
	EdgesDeleted   int `json:"edges_deleted"`
	EdgesRetopiced int `json:"edges_retopiced"`
	UsersAdded     int `json:"users_added"`
	// GraphsRepaired counts RR-Graphs re-sampled (invalidated or
	// re-targeted) and GraphsAppended fresh ones added for θ growth;
	// GraphsTotal is the index's graph count afterwards. All zero for
	// online strategies, which keep no offline structure.
	GraphsRepaired int `json:"graphs_repaired"`
	GraphsAppended int `json:"graphs_appended"`
	GraphsTotal    int `json:"graphs_total"`
	// FullRebuild reports that the offline structure could not be patched
	// and was rebuilt from scratch (a DelayMat without update tracking,
	// e.g. one loaded from disk).
	FullRebuild bool `json:"full_rebuild"`
	// Elapsed is the wall-clock repair time.
	Elapsed time.Duration `json:"elapsed_ns"`
}

// RepairedFraction is the share of index graphs the batch forced to be
// re-sampled (1 for a full rebuild, 0 for online strategies). A serving
// layer can watch it to decide when accumulated churn justifies a full
// offline rebuild (see package dynamic's documentation).
func (s UpdateStats) RepairedFraction() float64 {
	if s.FullRebuild {
		return 1
	}
	if s.GraphsTotal == 0 {
		return 0
	}
	return float64(s.GraphsRepaired+s.GraphsAppended) / float64(s.GraphsTotal)
}

// Generation returns the engine's update generation: 0 for a freshly built
// engine, incremented by every ApplyUpdates. Clones share their
// prototype's generation. Serving layers key caches by generation so a
// repaired engine never serves a stale result.
func (en *Engine) Generation() uint64 { return en.generation }

// ApplyUpdates applies the batch to the engine's network and returns a new
// query-ready engine of the next generation, incrementally repairing the
// offline index instead of rebuilding it: only RR-Graphs whose sampled
// edges are touched by the batch are re-sampled, and DelayMat counters are
// patched. The receiver is not modified and stays fully usable — it still
// answers queries over the pre-update network, which is what lets a
// serving layer drain old clones while new queries land on the repaired
// engine.
//
// The repaired index is statistically equivalent to a fresh rebuild over
// the updated network: unaffected RR-Graphs are distribution-identical
// under the new network, re-sampled ones are drawn from it, and θ and the
// target distribution are re-balanced when users are added. Estimates
// therefore keep the engine's (1-ε) guarantees at every generation.
func (en *Engine) ApplyUpdates(b *UpdateBatch) (*Engine, UpdateStats, error) {
	var stats UpdateStats
	if b == nil || b.Empty() {
		return nil, stats, fmt.Errorf("pitex: empty update batch")
	}
	start := time.Now()
	newNet, info, err := en.net.ApplyBatch(b)
	if err != nil {
		return nil, stats, err
	}
	newG := newNet.g
	next := &Engine{
		net:        newNet,
		model:      en.model,
		opts:       en.opts,
		remote:     en.remote, // a coordinator engine stays remote across generations
		generation: en.generation + 1,
		posterior:  make([]float64, en.model.NumTopics()),
		probe:      sampling.NewProbeCache(newG.NumEdges()),
	}
	stats.Generation = next.generation
	stats.EdgesInserted = info.Inserted
	stats.EdgesDeleted = info.Deleted
	stats.EdgesRetopiced = info.Retopiced
	stats.UsersAdded = info.AddedVertices

	if en.index != nil || en.delay != nil {
		build := rrindex.BuildOptions{
			Accuracy:        en.samplingOptions(enumerate.LogPhiK(en.model.NumTags(), en.opts.MaxK)),
			MaxIndexSamples: en.opts.MaxIndexSamples,
			// Mix the generation into the repair seed so successive
			// repairs draw independent streams, deterministically.
			// RepairSeed is the exported face of this derivation; remote
			// shard repairs must use the same one.
			Seed:         RepairSeed(en.opts.Seed, next.generation),
			TrackMembers: en.opts.TrackUpdates,
		}
		var rs rrindex.RepairStats
		switch {
		case en.index != nil:
			next.index, rs, err = en.index.Repair(newG, build, info.TouchedHeads, info.AddedVertices)
		case en.delay.CanRepair():
			next.delay, rs, err = en.delay.Repair(newG, build, info.TouchedHeads, info.AddedVertices)
		default:
			// No repair bookkeeping (e.g. the DelayMat was loaded from
			// disk): fall back to a full offline recount at the same shard
			// count, tracking members from now on when the engine opted
			// into updates.
			stats.FullRebuild = true
			next.delay, err = rrindex.BuildShardedDelayMat(newG, build, en.delay.NumShards())
			if next.delay != nil {
				rs.Total = int(next.delay.Theta())
			}
		}
		if err != nil {
			return nil, stats, err
		}
		stats.GraphsRepaired = rs.Invalidated + rs.Retargeted
		stats.GraphsAppended = rs.Appended
		stats.GraphsTotal = rs.Total
		next.IndexBuildTime = time.Since(start)
	}
	next.est = next.newEstimator()
	next.explorer = bestfirst.NewExplorer(next.net.g, next.model.m, next.est)
	next.explorer.CheapBounds = next.opts.CheapBounds
	stats.Elapsed = time.Since(start)
	return next, stats, nil
}

// ApplyBatch resolves and applies an update batch to the network,
// returning the updated network and what changed (including the touched
// heads repair routing keys on). It is the network half of
// Engine.ApplyUpdates, split out so processes that hold a network but no
// engine — shard servers repairing their index slices — can track the
// same mutations.
func (n *Network) ApplyBatch(b *UpdateBatch) (*Network, *graph.DeltaInfo, error) {
	if b == nil || b.Empty() {
		return nil, nil, fmt.Errorf("pitex: empty update batch")
	}
	delta, err := n.resolveBatch(b)
	if err != nil {
		return nil, nil, err
	}
	newG, info, err := graph.ApplyDelta(n.g, delta)
	if err != nil {
		return nil, nil, fmt.Errorf("pitex: %w", err)
	}
	return &Network{g: newG}, info, nil
}

// resolveBatch turns staged (from, to) operations into concrete edge IDs
// against the current network.
func (n *Network) resolveBatch(b *UpdateBatch) (graph.Delta, error) {
	g := n.g
	oldUsers := g.NumVertices()
	newUsers := oldUsers + b.addUsers
	if b.addUsers < 0 {
		return graph.Delta{}, fmt.Errorf("pitex: AddUsers(%d), want >= 0", b.addUsers)
	}
	var d graph.Delta
	d.AddVertices = b.addUsers

	// liveEdges returns the non-tombstone edge IDs from -> to.
	liveEdges := func(from, to int) ([]graph.EdgeID, error) {
		if from < 0 || from >= oldUsers || to < 0 || to >= oldUsers {
			return nil, fmt.Errorf("pitex: edge (%d,%d) outside [0,%d)", from, to, oldUsers)
		}
		var ids []graph.EdgeID
		outs := g.OutEdges(graph.VertexID(from))
		nbrs := g.OutNeighbors(graph.VertexID(from))
		for i, e := range outs {
			if nbrs[i] == graph.VertexID(to) && g.EdgeMaxProb(e) > 0 {
				ids = append(ids, e)
			}
		}
		if len(ids) == 0 {
			return nil, fmt.Errorf("pitex: no live edge %d -> %d", from, to)
		}
		return ids, nil
	}

	for _, del := range b.deletes {
		ids, err := liveEdges(del[0], del[1])
		if err != nil {
			return graph.Delta{}, err
		}
		d.DeleteEdges = append(d.DeleteEdges, ids...)
	}
	for _, rt := range b.retopics {
		ids, err := liveEdges(rt.from, rt.to)
		if err != nil {
			return graph.Delta{}, err
		}
		tps, err := toGraphTopics(rt.probs, g.NumTopics())
		if err != nil {
			return graph.Delta{}, err
		}
		for _, e := range ids {
			d.RetopicEdges = append(d.RetopicEdges, graph.EdgeRetopic{Edge: e, Topics: tps})
		}
	}
	for _, ins := range b.inserts {
		if ins.from < 0 || ins.from >= newUsers || ins.to < 0 || ins.to >= newUsers {
			return graph.Delta{}, fmt.Errorf("pitex: inserted edge (%d,%d) outside [0,%d)",
				ins.from, ins.to, newUsers)
		}
		if ins.from == ins.to {
			return graph.Delta{}, fmt.Errorf("pitex: inserted edge (%d,%d) is a self-loop", ins.from, ins.to)
		}
		tps, err := toGraphTopics(ins.probs, g.NumTopics())
		if err != nil {
			return graph.Delta{}, err
		}
		d.InsertEdges = append(d.InsertEdges, graph.EdgeInsert{
			From: graph.VertexID(ins.from), To: graph.VertexID(ins.to), Topics: tps,
		})
	}
	return d, nil
}

// toGraphTopics converts and validates a public topic vector.
func toGraphTopics(probs []TopicProb, numTopics int) ([]graph.TopicProb, error) {
	tps := make([]graph.TopicProb, 0, len(probs))
	for _, p := range probs {
		if p.Topic < 0 || p.Topic >= numTopics {
			return nil, fmt.Errorf("pitex: topic %d outside [0,%d)", p.Topic, numTopics)
		}
		if p.Prob < 0 || p.Prob > 1 {
			return nil, fmt.Errorf("pitex: p(e|z=%d) = %v outside [0,1]", p.Topic, p.Prob)
		}
		tps = append(tps, graph.TopicProb{Topic: int32(p.Topic), Prob: p.Prob})
	}
	return tps, nil
}
