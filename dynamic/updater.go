package dynamic

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"pitex"
	"pitex/internal/faultinject"
)

// Updater owns the live engine of a mutating network: Apply repairs the
// index incrementally for each committed batch and publishes the new
// generation atomically, so readers always observe a complete engine —
// either the old generation or the new one, never a half-applied state.
// Apply calls are serialized; Engine is wait-free. Safe for concurrent
// use.
type Updater struct {
	mu    sync.Mutex // serializes Apply and hook registration ordering
	cur   atomic.Pointer[pitex.Engine]
	hooks []func(old, next *pitex.Engine, stats pitex.UpdateStats)
}

// NewUpdater creates an updater publishing en as the current generation.
func NewUpdater(en *pitex.Engine) (*Updater, error) {
	if en == nil {
		return nil, fmt.Errorf("dynamic: nil engine")
	}
	u := &Updater{}
	u.cur.Store(en)
	return u, nil
}

// Engine returns the current generation. Callers needing concurrency
// should Clone it, exactly as with a static engine; clones keep answering
// over their generation even after later swaps.
func (u *Updater) Engine() *pitex.Engine { return u.cur.Load() }

// Generation returns the current engine generation.
func (u *Updater) Generation() uint64 { return u.cur.Load().Generation() }

// OnSwap registers a hook invoked after every successful Apply, in
// registration order, with the retiring engine, the new one and the
// batch's stats. Hooks run under the updater's apply lock: swaps are
// observed in order and a hook's work (pool rotation, cache eviction)
// completes before the next batch can land.
func (u *Updater) OnSwap(fn func(old, next *pitex.Engine, stats pitex.UpdateStats)) {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.hooks = append(u.hooks, fn)
}

// Apply repairs the current generation with the batch and publishes the
// result. On error nothing is swapped and the current engine keeps
// serving.
func (u *Updater) Apply(b *pitex.UpdateBatch) (pitex.UpdateStats, error) {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.applyLocked(b)
}

func (u *Updater) applyLocked(b *pitex.UpdateBatch) (pitex.UpdateStats, error) {
	// Failpoint: a commit that dies before the swap. Nothing is published,
	// the overlay rolls back its speculative users — exactly the invariant
	// the chaos harness probes.
	if out := faultinject.Eval(context.Background(), faultinject.PointDynamicCommit); out.Err != nil {
		return pitex.UpdateStats{}, out.Err
	}
	old := u.cur.Load()
	next, stats, err := old.ApplyUpdates(b)
	if err != nil {
		return stats, err
	}
	u.cur.Store(next)
	for _, fn := range u.hooks {
		fn(old, next, stats)
	}
	return stats, nil
}

// Commit is Apply(overlay.Commit()): it drains the overlay and applies the
// batch, reporting whether anything was staged. A batch that fails
// validation is dropped — the overlay does not re-stage it, so callers
// that stage speculative operations should validate through the Overlay
// methods (which catch range errors up front). User appends in a dropped
// batch are rolled out of the overlay's user count (they exist in no
// generation), so operations staged between the drain and the failure
// that referenced those phantom IDs will fail the next apply too.
func (u *Updater) Commit(o *Overlay) (pitex.UpdateStats, bool, error) {
	// Drain under the apply lock: concurrent Commits must apply batches in
	// the order they drained the overlay, or a batch referencing users an
	// earlier drain staged would resolve against an engine that does not
	// have them yet and be dropped despite being valid in stage order.
	u.mu.Lock()
	defer u.mu.Unlock()
	b := o.Commit()
	if b == nil {
		return pitex.UpdateStats{}, false, nil
	}
	stats, err := u.applyLocked(b)
	if err != nil {
		o.rollbackUsers(b.AddedUsers())
	}
	return stats, true, err
}
