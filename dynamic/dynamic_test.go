package dynamic

import (
	"math"
	"sync"
	"testing"

	"pitex"
	"pitex/internal/rng"
)

// fig2 builds the paper's running example (7 users, 3 topics, 4 tags).
func fig2(tb testing.TB, s pitex.Strategy) (*pitex.Network, *pitex.TagModel, *pitex.Engine) {
	tb.Helper()
	nb := pitex.NewNetworkBuilder(7, 3)
	nb.AddEdge(0, 1, pitex.TopicProb{Topic: 0, Prob: 0.4})
	nb.AddEdge(0, 2, pitex.TopicProb{Topic: 1, Prob: 0.5}, pitex.TopicProb{Topic: 2, Prob: 0.5})
	nb.AddEdge(2, 5, pitex.TopicProb{Topic: 0, Prob: 0.5})
	nb.AddEdge(2, 3, pitex.TopicProb{Topic: 2, Prob: 0.8})
	nb.AddEdge(3, 5, pitex.TopicProb{Topic: 2, Prob: 0.5})
	nb.AddEdge(3, 6, pitex.TopicProb{Topic: 2, Prob: 0.4})
	nb.AddEdge(5, 6, pitex.TopicProb{Topic: 2, Prob: 0.5})
	net, err := nb.Build()
	if err != nil {
		tb.Fatalf("Build: %v", err)
	}
	model, err := pitex.NewTagModel(4, 3)
	if err != nil {
		tb.Fatalf("NewTagModel: %v", err)
	}
	rows := [][3]float64{{0.6, 0.4, 0}, {0.4, 0.6, 0}, {0, 0.4, 0.6}, {0, 0.4, 0.6}}
	for w, row := range rows {
		for z, p := range row {
			if err := model.SetTagTopic(w, z, p); err != nil {
				tb.Fatalf("SetTagTopic: %v", err)
			}
		}
	}
	en, err := pitex.NewEngine(net, model, pitex.Options{
		Strategy: s, Epsilon: 0.15, Delta: 200, MaxK: 4, Seed: 11,
		MaxSamples: 20000, MaxIndexSamples: 20000, TrackUpdates: true,
	})
	if err != nil {
		tb.Fatalf("NewEngine: %v", err)
	}
	return net, model, en
}

func TestUpdaterSwapsGenerations(t *testing.T) {
	net, _, en := fig2(t, pitex.StrategyIndexPruned)
	u, err := NewUpdater(en)
	if err != nil {
		t.Fatalf("NewUpdater: %v", err)
	}
	if u.Generation() != 0 || u.Engine() != en {
		t.Fatal("initial state wrong")
	}
	var hooked []uint64
	u.OnSwap(func(old, next *pitex.Engine, stats pitex.UpdateStats) {
		if old.Generation()+1 != next.Generation() {
			t.Errorf("hook generations %d -> %d", old.Generation(), next.Generation())
		}
		hooked = append(hooked, stats.Generation)
	})

	o := NewOverlay(net)
	if err := o.DeleteEdge(2, 3); err != nil {
		t.Fatalf("DeleteEdge: %v", err)
	}
	stats, applied, err := u.Commit(o)
	if err != nil || !applied {
		t.Fatalf("Commit: applied=%v err=%v", applied, err)
	}
	if stats.Generation != 1 || u.Generation() != 1 {
		t.Fatalf("generation %d / %d, want 1", stats.Generation, u.Generation())
	}
	if len(hooked) != 1 || hooked[0] != 1 {
		t.Fatalf("hooks fired %v", hooked)
	}
	if u.Engine() == en {
		t.Fatal("engine not swapped")
	}
	// Committing an empty overlay is a no-op.
	if _, applied, err := u.Commit(o); err != nil || applied {
		t.Fatalf("empty commit: applied=%v err=%v", applied, err)
	}
	// A failing batch swaps nothing.
	var bad pitex.UpdateBatch
	bad.DeleteEdge(2, 3) // already gone
	if _, err := u.Apply(&bad); err == nil {
		t.Fatal("bad batch accepted")
	}
	if u.Generation() != 1 {
		t.Fatal("failed apply advanced the generation")
	}
}

func TestOverlayStagingAndDiscard(t *testing.T) {
	net, _, _ := fig2(t, pitex.StrategyLazy)
	o := NewOverlay(net)
	if o.NumUsers() != 7 || o.Pending() != 0 {
		t.Fatalf("initial view: %d users, %d pending", o.NumUsers(), o.Pending())
	}
	first, err := o.AddUsers(3)
	if err != nil || first != 7 {
		t.Fatalf("AddUsers: first=%d err=%v", first, err)
	}
	// Staged users are immediately referenceable.
	if err := o.InsertEdge(0, first, pitex.TopicProb{Topic: 0, Prob: 0.5}); err != nil {
		t.Fatalf("InsertEdge to staged user: %v", err)
	}
	if err := o.InsertEdge(0, 42); err == nil {
		t.Fatal("out-of-range target accepted")
	}
	if err := o.InsertEdge(3, 3); err == nil {
		t.Fatal("self-loop accepted")
	}
	if o.NumUsers() != 10 || o.Pending() != 2 {
		t.Fatalf("staged view: %d users, %d pending", o.NumUsers(), o.Pending())
	}
	o.Discard()
	if o.NumUsers() != 7 || o.Pending() != 0 {
		t.Fatalf("discard left: %d users, %d pending", o.NumUsers(), o.Pending())
	}
	// Commit path: stage again, commit, overlay empties but keeps users.
	if _, err := o.AddUsers(1); err != nil {
		t.Fatalf("AddUsers: %v", err)
	}
	b := o.Commit()
	if b == nil || b.Empty() {
		t.Fatal("commit returned empty batch")
	}
	if o.Pending() != 0 || o.NumUsers() != 8 {
		t.Fatalf("post-commit view: %d users, %d pending", o.NumUsers(), o.Pending())
	}
	if o.Commit() != nil {
		t.Fatal("second commit not nil")
	}
}

// TestCommitRollbackOnFailure pins the overlay/engine user-count
// invariant: a dropped batch must not leave phantom users in the overlay
// view, or every later batch referencing them would pass staging checks
// and fail at apply time forever.
func TestCommitRollbackOnFailure(t *testing.T) {
	net, _, en := fig2(t, pitex.StrategyIndexPruned)
	u, err := NewUpdater(en)
	if err != nil {
		t.Fatalf("NewUpdater: %v", err)
	}
	o := NewOverlay(net)
	if _, err := o.AddUsers(3); err != nil {
		t.Fatalf("AddUsers: %v", err)
	}
	// 6 -> 0 is in range (passes staging) but has no live edge, so the
	// batch fails apply-time resolution.
	if err := o.DeleteEdge(6, 0); err != nil {
		t.Fatalf("DeleteEdge: %v", err)
	}
	if _, applied, err := u.Commit(o); !applied || err == nil {
		t.Fatalf("Commit: applied=%v err=%v, want applied failure", applied, err)
	}
	if u.Generation() != 0 {
		t.Fatalf("failed commit advanced generation to %d", u.Generation())
	}
	if got := o.NumUsers(); got != 7 {
		t.Fatalf("overlay kept %d users after dropped batch, want 7", got)
	}
	// The overlay stays usable: the same IDs are handed out again and a
	// clean batch goes through.
	first, err := o.AddUsers(1)
	if err != nil || first != 7 {
		t.Fatalf("AddUsers after rollback: first=%d err=%v, want 7", first, err)
	}
	if err := o.InsertEdge(0, first, pitex.TopicProb{Topic: 0, Prob: 0.5}); err != nil {
		t.Fatalf("InsertEdge: %v", err)
	}
	if _, applied, err := u.Commit(o); !applied || err != nil {
		t.Fatalf("clean commit: applied=%v err=%v", applied, err)
	}
	if u.Generation() != 1 || u.Engine().Network().NumUsers() != 8 {
		t.Fatalf("generation %d over %d users, want 1 over 8",
			u.Generation(), u.Engine().Network().NumUsers())
	}
}

// TestQueriesDuringSwap exercises the zero-downtime property: query
// traffic over clones keeps succeeding while updates land concurrently
// (the race detector guards memory safety).
func TestQueriesDuringSwap(t *testing.T) {
	net, _, en := fig2(t, pitex.StrategyIndexPruned)
	u, err := NewUpdater(en)
	if err != nil {
		t.Fatalf("NewUpdater: %v", err)
	}
	o := NewOverlay(net)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				clone := u.Engine().Clone()
				if _, err := clone.Query(0, 2); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	probs := []float64{0.3, 0.5, 0.7, 0.45, 0.6}
	for i, p := range probs {
		if err := o.SetEdge(2, 3, pitex.TopicProb{Topic: 2, Prob: p}); err != nil {
			t.Fatalf("SetEdge: %v", err)
		}
		if _, applied, err := u.Commit(o); err != nil || !applied {
			t.Fatalf("commit %d: applied=%v err=%v", i, applied, err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatalf("query during swap failed: %v", err)
	default:
	}
	if u.Generation() != uint64(len(probs)) {
		t.Fatalf("generation %d, want %d", u.Generation(), len(probs))
	}
}

// randomNetwork builds a sparse random network for the equivalence test
// and benchmarks.
func randomNetwork(tb testing.TB, users, avgDeg, topics int, lo, hi float64, seed uint64) (*pitex.Network, *pitex.TagModel) {
	tb.Helper()
	r := rng.New(seed)
	nb := pitex.NewNetworkBuilder(users, topics)
	for v := 0; v < users; v++ {
		for d := 0; d < avgDeg; d++ {
			to := r.Intn(users)
			if to == v {
				continue
			}
			nb.AddEdge(v, to, pitex.TopicProb{Topic: r.Intn(topics), Prob: lo + (hi-lo)*r.Float64()})
		}
	}
	net, err := nb.Build()
	if err != nil {
		tb.Fatalf("Build: %v", err)
	}
	model, err := pitex.NewTagModel(2*topics, topics)
	if err != nil {
		tb.Fatalf("NewTagModel: %v", err)
	}
	for w := 0; w < 2*topics; w++ {
		if err := model.SetTagTopic(w, w%topics, 0.7); err != nil {
			tb.Fatalf("SetTagTopic: %v", err)
		}
		if err := model.SetTagTopic(w, (w+1)%topics, 0.3); err != nil {
			tb.Fatalf("SetTagTopic: %v", err)
		}
	}
	return net, model
}

// TestRepairedEngineMatchesRebuild is the acceptance-criteria equivalence
// check at the public-API level: after a mixed batch, the incrementally
// repaired engine's estimates match a from-scratch NewEngine over the
// updated network within the estimators' (1±ε) tolerance.
func TestRepairedEngineMatchesRebuild(t *testing.T) {
	net, model := randomNetwork(t, 250, 4, 2, 0.05, 0.3, 17)
	opts := pitex.Options{
		Strategy: pitex.StrategyIndex, Epsilon: 0.2, Delta: 200,
		MaxK: 2, Seed: 5, // θ uncapped: the guarantee must actually hold
	}
	en, err := pitex.NewEngine(net, model, opts)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	edges := liveEdges(net)
	var b pitex.UpdateBatch
	b.DeleteEdge(edges[0].From, edges[0].To)
	b.DeleteEdge(edges[40].From, edges[40].To)
	b.SetEdge(edges[80].From, edges[80].To, pitex.TopicProb{Topic: 0, Prob: 0.25})
	b.InsertEdge(1, 200, pitex.TopicProb{Topic: 0, Prob: 0.4})
	b.InsertEdge(200, 2, pitex.TopicProb{Topic: 1, Prob: 0.4})
	repaired, stats, err := en.ApplyUpdates(&b)
	if err != nil {
		t.Fatalf("ApplyUpdates: %v", err)
	}
	if stats.RepairedFraction() >= 0.9 {
		t.Fatalf("repair fraction %.2f — not incremental", stats.RepairedFraction())
	}
	rebuilt, err := pitex.NewEngine(repaired.Network(), model, opts)
	if err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	tol := (1 + opts.Epsilon) / (1 - opts.Epsilon) * 1.05
	for u := 0; u < 250; u += 13 {
		a, err := repaired.EstimateInfluence(u, []int{0, 1})
		if err != nil {
			t.Fatalf("repaired estimate: %v", err)
		}
		c, err := rebuilt.EstimateInfluence(u, []int{0, 1})
		if err != nil {
			t.Fatalf("rebuilt estimate: %v", err)
		}
		lo, hi := math.Min(a, c), math.Max(a, c)
		if hi/lo > tol {
			t.Errorf("u=%d: repaired %.4f vs rebuilt %.4f exceeds tolerance %.3f", u, a, c, tol)
		}
	}
}

// liveEdges collects the network's live edges in ID order, deduplicated
// by (from, to) so batch operations that resolve every parallel edge pick
// distinct pairs.
func liveEdges(net *pitex.Network) []pitex.Edge {
	var out []pitex.Edge
	seen := map[[2]int]bool{}
	net.ForEachEdge(func(e pitex.Edge) bool {
		if e.Live() && !seen[[2]int{e.From, e.To}] {
			seen[[2]int{e.From, e.To}] = true
			out = append(out, e)
		}
		return true
	})
	return out
}
