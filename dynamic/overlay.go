package dynamic

import (
	"fmt"
	"sync"

	"pitex"
)

// Overlay is a mutable staging area over an (immutable) Network: callers
// record edge insertions, deletions, probability changes and user appends
// as they arrive from the outside world, then Commit drains them as one
// atomic UpdateBatch for Updater.Apply. The overlay tracks the running
// user count across commits so staged operations can reference users that
// earlier batches added. Safe for concurrent use.
type Overlay struct {
	mu      sync.Mutex
	batch   *pitex.UpdateBatch
	users   int // base users plus every staged/committed AddUsers
	pending int // staged users not yet committed
}

// NewOverlay creates an overlay over the network an engine currently
// serves.
func NewOverlay(net *pitex.Network) *Overlay {
	return &Overlay{batch: &pitex.UpdateBatch{}, users: net.NumUsers()}
}

// NumUsers returns the user count as of the staged state: the base network
// plus every AddUsers recorded so far (committed or not).
func (o *Overlay) NumUsers() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.users
}

// Pending returns the number of staged, uncommitted operations.
func (o *Overlay) Pending() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.batch.Len()
}

// checkUser validates a staged user reference against the overlay view.
func (o *Overlay) checkUser(u int) error {
	if u < 0 || u >= o.users {
		return fmt.Errorf("dynamic: user %d outside overlay range [0,%d)", u, o.users)
	}
	return nil
}

// InsertEdge stages a new influence edge from -> to.
func (o *Overlay) InsertEdge(from, to int, probs ...pitex.TopicProb) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if err := o.checkUser(from); err != nil {
		return err
	}
	if err := o.checkUser(to); err != nil {
		return err
	}
	if from == to {
		return fmt.Errorf("dynamic: self-loop at user %d", from)
	}
	o.batch.InsertEdge(from, to, probs...)
	return nil
}

// DeleteEdge stages the removal of every live edge from -> to.
func (o *Overlay) DeleteEdge(from, to int) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if err := o.checkUser(from); err != nil {
		return err
	}
	if err := o.checkUser(to); err != nil {
		return err
	}
	o.batch.DeleteEdge(from, to)
	return nil
}

// SetEdge stages a topic-probability change on every live edge from -> to.
func (o *Overlay) SetEdge(from, to int, probs ...pitex.TopicProb) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if err := o.checkUser(from); err != nil {
		return err
	}
	if err := o.checkUser(to); err != nil {
		return err
	}
	o.batch.SetEdge(from, to, probs...)
	return nil
}

// AddUsers stages appending n users and returns the ID of the first one,
// so the caller can immediately stage edges for the newcomers.
func (o *Overlay) AddUsers(n int) (first int, err error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if n <= 0 {
		return 0, fmt.Errorf("dynamic: AddUsers(%d), want > 0", n)
	}
	first = o.users
	o.users += n
	o.pending += n
	o.batch.AddUsers(n)
	return first, nil
}

// Commit drains the staged operations as one batch, leaving the overlay
// empty (the user count keeps reflecting committed appends). Returns nil
// when nothing is staged.
func (o *Overlay) Commit() *pitex.UpdateBatch {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.batch.Empty() {
		return nil
	}
	b := o.batch
	o.batch = &pitex.UpdateBatch{}
	o.pending = 0
	return b
}

// rollbackUsers removes n user appends from the overlay view after the
// batch that staged them failed to apply: the users never materialized in
// any engine generation, so keeping them would let future staging pass
// range checks for IDs no generation will ever accept.
func (o *Overlay) rollbackUsers(n int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.users -= n
}

// Discard drops every staged operation, rolling the overlay view back to
// the last committed state.
func (o *Overlay) Discard() {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.users -= o.pending
	o.pending = 0
	o.batch = &pitex.UpdateBatch{}
}
