package dynamic

import (
	"errors"
	"testing"

	"pitex"
	"pitex/internal/faultinject"
)

// TestCommitFailpointLeavesStateIntact: an injected commit failure must
// behave exactly like a validation failure — nothing published, the
// serving engine untouched, and the overlay's speculative users rolled
// back so the fleet never observes a half-applied generation.
func TestCommitFailpointLeavesStateIntact(t *testing.T) {
	_, _, en := fig2(t, pitex.StrategyIndexPruned)
	u, err := NewUpdater(en)
	if err != nil {
		t.Fatalf("NewUpdater: %v", err)
	}
	if err := faultinject.Enable(7, []faultinject.Rule{
		{Point: faultinject.PointDynamicCommit, Mode: faultinject.ModeError, Count: 1},
	}); err != nil {
		t.Fatalf("Enable: %v", err)
	}
	t.Cleanup(faultinject.Disable)

	var b pitex.UpdateBatch
	b.SetEdge(2, 3, pitex.TopicProb{Topic: 2, Prob: 0.5})
	_, err = u.Apply(&b)
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("Apply err = %v, want ErrInjected", err)
	}
	if u.Generation() != 0 || u.Engine() != en {
		t.Fatal("failed commit mutated published state")
	}

	// The schedule is spent: the same batch applies cleanly now.
	var b2 pitex.UpdateBatch
	b2.SetEdge(2, 3, pitex.TopicProb{Topic: 2, Prob: 0.5})
	if _, err := u.Apply(&b2); err != nil {
		t.Fatalf("post-schedule Apply: %v", err)
	}
	if u.Generation() != 1 {
		t.Fatalf("generation = %d, want 1", u.Generation())
	}
}
