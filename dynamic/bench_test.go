package dynamic

import (
	"testing"

	"pitex"
	"pitex/internal/rng"
)

// benchSetup builds the benchmark universe once: a 2000-user network with
// ~10k edges, an IndexEst+ engine over it, and an update batch touching
// ~0.5% of the edges (50 probability drifts + 5 deletes + 5 inserts ≈ 60
// of ~10k), the "social graph absorbing daily churn" shape the ISSUE's
// acceptance criterion targets (batches ≤ 1% of edges).
type benchUniverse struct {
	net   *pitex.Network
	model *pitex.TagModel
	opts  pitex.Options
	en    *pitex.Engine
	batch func() *pitex.UpdateBatch
}

var benchU *benchUniverse

func setupBench(b *testing.B) *benchUniverse {
	b.Helper()
	if benchU != nil {
		return benchU
	}
	net, model := randomNetwork(b, 2000, 5, 2, 0.02, 0.12, 99)
	// θ is left at its theoretical Eq. 7 value (~150k RR-Graphs for this
	// network): capping it would shrink exactly the rebuild cost that
	// incremental repair amortizes, flattering neither side.
	opts := pitex.Options{
		Strategy: pitex.StrategyIndexPruned, Epsilon: 0.5, Delta: 100,
		MaxK: 2, Seed: 3,
	}
	en, err := pitex.NewEngine(net, model, opts)
	if err != nil {
		b.Fatalf("NewEngine: %v", err)
	}
	edges := liveEdges(net)
	r := rng.New(7)
	batch := func() *pitex.UpdateBatch {
		var ub pitex.UpdateBatch
		for i := 0; i < 50; i++ {
			e := edges[r.Intn(len(edges)-20)+10]
			ub.SetEdge(e.From, e.To, pitex.TopicProb{Topic: 0, Prob: 0.02 + 0.1*r.Float64()})
		}
		for i := 0; i < 5; i++ {
			e := edges[i] // deleted once below; later batches re-insert first
			ub.DeleteEdge(e.From, e.To)
			ub.InsertEdge(e.From, e.To, pitex.TopicProb{Topic: 1, Prob: 0.05})
		}
		return &ub
	}
	benchU = &benchUniverse{net: net, model: model, opts: opts, en: en, batch: batch}
	return benchU
}

// BenchmarkIncrementalRepair measures Engine.ApplyUpdates: patch the live
// index for a ≤1%-of-edges batch. Compare with BenchmarkFullRebuild — the
// acceptance bar is a ≥10x advantage.
func BenchmarkIncrementalRepair(b *testing.B) {
	u := setupBench(b)
	cur := u.en
	var frac float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		next, stats, err := cur.ApplyUpdates(u.batch())
		if err != nil {
			b.Fatalf("ApplyUpdates: %v", err)
		}
		cur = next
		frac = stats.RepairedFraction()
	}
	b.ReportMetric(frac, "repaired-fraction")
}

// BenchmarkFullRebuild measures the status quo ante: NewEngine from
// scratch over the updated network (the offline phase the paper's Table 3
// prices), which is what a frozen-index deployment pays per change.
func BenchmarkFullRebuild(b *testing.B) {
	u := setupBench(b)
	// Apply one batch so the rebuilt network is the post-update one.
	next, _, err := u.en.ApplyUpdates(u.batch())
	if err != nil {
		b.Fatalf("ApplyUpdates: %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pitex.NewEngine(next.Network(), u.model, u.opts); err != nil {
			b.Fatalf("NewEngine: %v", err)
		}
	}
}

// BenchmarkUpdaterSwapUnderLoad measures Apply latency while clones
// query concurrently, the serving-path picture of a hot-swap.
func BenchmarkUpdaterSwapUnderLoad(b *testing.B) {
	u := setupBench(b)
	up, err := NewUpdater(u.en)
	if err != nil {
		b.Fatalf("NewUpdater: %v", err)
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			clone := up.Engine().Clone()
			_, _ = clone.Query(1, 2)
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := up.Apply(u.batch()); err != nil {
			b.Fatalf("Apply: %v", err)
		}
	}
	b.StopTimer()
	close(stop)
	<-done
}
