// Package dynamic keeps a PITEX engine answering queries while the social
// graph underneath it changes: edges appear and disappear, influence
// probabilities drift as the topic model relearns, and new users join.
//
// The paper's index strategies (IndexEst, IndexEst+, DelayMat; Sec. 6)
// assume a frozen network — the offline phase samples θ RR-Graphs once.
// Without this package, any change means a full offline rebuild and a
// server restart. Following the "queries under updates" line of work
// (Berkholz et al., PAPERS.md), dynamic converts that into three steps,
// none of which stops query traffic:
//
//	Overlay (staged mutations)
//	   │  Commit: one atomic UpdateBatch
//	   ▼
//	Engine.ApplyUpdates (incremental index repair)
//	   │  re-samples ONLY the RR-Graphs whose sampled edges are touched
//	   │  by the batch (an RR-Graph can change only if it contains the
//	   │  head vertex of a mutated edge); DelayMat counters are patched
//	   │  by decrement / re-sample / increment. The old engine is not
//	   │  modified — old and new generation share every untouched
//	   │  RR-Graph.
//	   ▼
//	Updater (atomic generation swap)
//	   │  publishes the repaired engine; OnSwap hooks let a serving
//	   │  layer rotate its engine pool and evict stale cache entries.
//	   │  (Package serve implements this rotation natively at its pool
//	   │  layer on /admin/update; Overlay and Updater are the same
//	   │  pattern for programs embedding an Engine directly.)
//	   ▼
//	queries — old clones drain on the old generation, new queries land
//	on the repaired one; no request ever observes a half-applied batch.
//
// # Statistical contract
//
// A repaired index is distribution-equivalent to a fresh rebuild over the
// updated network: untouched RR-Graphs would have been re-sampled to an
// identically distributed outcome (their generation never probes a mutated
// edge), invalidated ones are re-sampled from the new network, and vertex
// additions re-balance both θ (Eq. 7 scales with |V|) and the uniform
// target distribution by re-targeting existing graphs with probability
// ΔV/|V_new| and appending the θ growth. Estimates therefore keep the
// engine's (1-ε)/(1+ε) guarantees at every generation.
//
// # When to prefer a full rebuild
//
// Incremental repair wins when batches touch a small fraction of the
// network — the common case for a social graph absorbing follows and
// unfollows. Prefer a full rebuild (NewEngine over the updated network)
// when:
//
//   - a batch touches hub vertices contained in most RR-Graphs, so the
//     invalidated fraction approaches 1 and repair degenerates into a
//     slower rebuild;
//   - many deletions have accumulated: deleted edges are tombstoned (IDs
//     stay stable for the index), so the edge array never shrinks until a
//     rebuild compacts it;
//   - the tag model or topic count changed — that is a different model,
//     not a graph delta, and no index sample survives it.
//
// Updater.Apply reports RepairedFraction per batch; a serving layer can
// watch it and schedule an offline rebuild when it stays high.
//
// # Sharded indexes
//
// Engines built with pitex.Options.IndexShards > 1 repair per shard: the
// batch is routed only to the shards whose postings contain a touched
// head (the others share their arenas with the previous generation
// unchanged), and the owning shards repair concurrently under
// independent per-shard streams. For a small batch this shrinks both the
// repair work and the copy-on-write churn to roughly 1/S of the index,
// and Engine.IndexShardStats exposes cumulative per-shard repair counts
// so skew (one hub-heavy shard absorbing every batch) is visible before
// it degrades into rebuild-sized repairs.
package dynamic
