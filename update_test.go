package pitex

import (
	"testing"
)

func TestApplyUpdatesQueriesReflectChange(t *testing.T) {
	net, model := fig2Network(t)
	for _, s := range []Strategy{StrategyLazy, StrategyIndexPruned, StrategyDelay} {
		opts := testEngineOptions(s)
		opts.TrackUpdates = true
		en, err := NewEngine(net, model, opts)
		if err != nil {
			t.Fatalf("%v: NewEngine: %v", s, err)
		}
		before, err := en.EstimateInfluence(0, []int{2, 3})
		if err != nil {
			t.Fatalf("%v: EstimateInfluence: %v", s, err)
		}

		// Cut u1 off entirely: delete both out-edges of user 0.
		var b UpdateBatch
		b.DeleteEdge(0, 1)
		b.DeleteEdge(0, 2)
		next, stats, err := en.ApplyUpdates(&b)
		if err != nil {
			t.Fatalf("%v: ApplyUpdates: %v", s, err)
		}
		if stats.Generation != 1 || next.Generation() != 1 || en.Generation() != 0 {
			t.Fatalf("%v: generations wrong: %+v", s, stats)
		}
		if stats.EdgesDeleted != 2 {
			t.Fatalf("%v: deleted %d edges", s, stats.EdgesDeleted)
		}
		after, err := next.EstimateInfluence(0, []int{2, 3})
		if err != nil {
			t.Fatalf("%v: EstimateInfluence after: %v", s, err)
		}
		// An isolated user influences nobody: the estimate collapses to ~1
		// (exactly 1 in expectation; index strategies see binomial noise
		// from graphs that target the user itself).
		if after >= before || after > 1.1 {
			t.Errorf("%v: influence of isolated user = %v (before %v), want ~1", s, after, before)
		}
		// The old engine still answers over the pre-update network, where
		// user 0 is connected (sampling estimators re-draw per call, so
		// only the magnitude is comparable).
		still, err := en.EstimateInfluence(0, []int{2, 3})
		if err != nil || still < 1.2 {
			t.Errorf("%v: old engine lost the pre-update network: %v (err %v)", s, still, err)
		}

		// Reconnect with a strong edge and confirm influence recovers.
		var b2 UpdateBatch
		b2.InsertEdge(0, 3, TopicProb{Topic: 2, Prob: 0.95})
		third, stats2, err := next.ApplyUpdates(&b2)
		if err != nil {
			t.Fatalf("%v: ApplyUpdates insert: %v", s, err)
		}
		if stats2.Generation != 2 {
			t.Fatalf("%v: generation %d, want 2", s, stats2.Generation)
		}
		recovered, err := third.EstimateInfluence(0, []int{2, 3})
		if err != nil {
			t.Fatalf("%v: EstimateInfluence reconnect: %v", s, err)
		}
		if recovered <= after {
			t.Errorf("%v: influence did not recover after insert: %v <= %v", s, recovered, after)
		}
		if q, err := third.Query(0, 2); err != nil || len(q.Tags) != 2 {
			t.Errorf("%v: query on updated engine failed: %v %v", s, q.Tags, err)
		}
	}
}

func TestApplyUpdatesIncrementalNotRebuild(t *testing.T) {
	net, model := fig2Network(t)
	opts := testEngineOptions(StrategyIndexPruned)
	en, err := NewEngine(net, model, opts)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	var b UpdateBatch
	b.SetEdge(5, 6, TopicProb{Topic: 2, Prob: 0.7})
	next, stats, err := en.ApplyUpdates(&b)
	if err != nil {
		t.Fatalf("ApplyUpdates: %v", err)
	}
	if stats.FullRebuild {
		t.Fatal("index strategy reported a full rebuild")
	}
	if stats.GraphsRepaired == 0 {
		t.Fatal("nothing repaired for a probability change")
	}
	if stats.GraphsRepaired >= stats.GraphsTotal {
		t.Fatalf("repair touched all %d graphs — not incremental", stats.GraphsTotal)
	}
	if next.IndexMemoryBytes() == 0 {
		t.Fatal("repaired engine lost its index")
	}
}

func TestApplyUpdatesAddUsers(t *testing.T) {
	net, model := fig2Network(t)
	opts := testEngineOptions(StrategyIndexPruned)
	en, err := NewEngine(net, model, opts)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	var b UpdateBatch
	b.AddUsers(2)
	b.InsertEdge(0, 7, TopicProb{Topic: 0, Prob: 0.9})
	b.InsertEdge(7, 8, TopicProb{Topic: 0, Prob: 0.9})
	next, stats, err := en.ApplyUpdates(&b)
	if err != nil {
		t.Fatalf("ApplyUpdates: %v", err)
	}
	if stats.UsersAdded != 2 || next.net.NumUsers() != 9 {
		t.Fatalf("users: %+v, NumUsers %d", stats, next.net.NumUsers())
	}
	// The new users are queryable and reachable.
	inf, err := next.EstimateInfluence(7, []int{0})
	if err != nil {
		t.Fatalf("EstimateInfluence(new user): %v", err)
	}
	if inf < 1 {
		t.Fatalf("influence %v < 1", inf)
	}
	if _, err := next.Query(8, 2); err != nil {
		t.Fatalf("Query(new user): %v", err)
	}
	// Old engine must reject the new user IDs.
	if _, err := en.Query(7, 2); err == nil {
		t.Fatal("old engine accepted a user from the next generation")
	}
}

func TestApplyUpdatesDelayMatFallback(t *testing.T) {
	net, model := fig2Network(t)
	opts := testEngineOptions(StrategyDelay) // TrackUpdates unset
	en, err := NewEngine(net, model, opts)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	var b UpdateBatch
	b.DeleteEdge(5, 6)
	next, stats, err := en.ApplyUpdates(&b)
	if err != nil {
		t.Fatalf("ApplyUpdates: %v", err)
	}
	if !stats.FullRebuild {
		t.Fatal("untracked DelayMat did not report a full rebuild")
	}
	// With TrackUpdates the rebuild switched tracking on, so the NEXT
	// update patches incrementally... only if the engine opted in. It did
	// not, so the next update is a full rebuild again.
	var b2 UpdateBatch
	b2.InsertEdge(5, 6, TopicProb{Topic: 2, Prob: 0.5})
	_, stats2, err := next.ApplyUpdates(&b2)
	if err != nil {
		t.Fatalf("second ApplyUpdates: %v", err)
	}
	if !stats2.FullRebuild {
		t.Fatal("untracked engine repaired without bookkeeping")
	}

	// Opted-in DelayMat patches incrementally.
	opts.TrackUpdates = true
	en2, err := NewEngine(net, model, opts)
	if err != nil {
		t.Fatalf("NewEngine tracked: %v", err)
	}
	var b3 UpdateBatch
	b3.DeleteEdge(5, 6)
	_, stats3, err := en2.ApplyUpdates(&b3)
	if err != nil {
		t.Fatalf("tracked ApplyUpdates: %v", err)
	}
	if stats3.FullRebuild {
		t.Fatal("tracked DelayMat fell back to rebuild")
	}
}

func TestApplyUpdatesValidation(t *testing.T) {
	net, model := fig2Network(t)
	en, err := NewEngine(net, model, testEngineOptions(StrategyLazy))
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	if _, _, err := en.ApplyUpdates(nil); err == nil {
		t.Error("nil batch accepted")
	}
	if _, _, err := en.ApplyUpdates(&UpdateBatch{}); err == nil {
		t.Error("empty batch accepted")
	}
	bad := map[string]func(*UpdateBatch){
		"delete missing edge":   func(b *UpdateBatch) { b.DeleteEdge(1, 0) },
		"delete out of range":   func(b *UpdateBatch) { b.DeleteEdge(0, 99) },
		"set missing edge":      func(b *UpdateBatch) { b.SetEdge(6, 0, TopicProb{Topic: 0, Prob: 0.1}) },
		"insert self loop":      func(b *UpdateBatch) { b.InsertEdge(3, 3, TopicProb{Topic: 0, Prob: 0.1}) },
		"insert out of range":   func(b *UpdateBatch) { b.InsertEdge(0, 42, TopicProb{Topic: 0, Prob: 0.1}) },
		"insert bad topic":      func(b *UpdateBatch) { b.InsertEdge(0, 3, TopicProb{Topic: 9, Prob: 0.1}) },
		"insert bad probabilty": func(b *UpdateBatch) { b.InsertEdge(0, 3, TopicProb{Topic: 0, Prob: 1.5}) },
	}
	for name, stage := range bad {
		var b UpdateBatch
		stage(&b)
		if _, _, err := en.ApplyUpdates(&b); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// A failed apply must not bump the generation.
	if en.Generation() != 0 {
		t.Fatal("failed updates advanced the generation")
	}
}

func TestCloneInheritsGeneration(t *testing.T) {
	net, model := fig2Network(t)
	en, err := NewEngine(net, model, testEngineOptions(StrategyLazy))
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	var b UpdateBatch
	b.SetEdge(0, 1, TopicProb{Topic: 0, Prob: 0.5})
	next, _, err := en.ApplyUpdates(&b)
	if err != nil {
		t.Fatalf("ApplyUpdates: %v", err)
	}
	if c := next.Clone(); c.Generation() != 1 {
		t.Fatalf("clone generation %d, want 1", c.Generation())
	}
}
