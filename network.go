package pitex

import (
	"fmt"
	"io"

	"pitex/internal/graph"
)

// TopicProb is one entry of an edge's topic-wise influence vector: the
// probability p(e|z) that the edge activates when topic z carries the
// content.
type TopicProb struct {
	Topic int
	Prob  float64
}

// Network is an immutable directed social network with topic-aware edge
// probabilities. Build one with NetworkBuilder, load one with ReadNetwork,
// or generate one with GenerateDataset. Safe for concurrent readers.
type Network struct {
	g *graph.Graph
}

// NumUsers returns the number of users (vertices).
func (n *Network) NumUsers() int { return n.g.NumVertices() }

// Graph exposes the underlying graph for module-internal layers — shard
// servers materialize probers and build index slices against it. The
// internal type keeps it unusable outside this module.
func (n *Network) Graph() *graph.Graph { return n.g }

// NumEdges returns the number of follow/influence edges.
func (n *Network) NumEdges() int { return n.g.NumEdges() }

// NumTopics returns the number of latent topics the edge probabilities
// refer to.
func (n *Network) NumTopics() int { return n.g.NumTopics() }

// OutDegree returns the number of users directly influenced by user u.
func (n *Network) OutDegree(u int) int {
	return n.g.OutDegree(graph.VertexID(u))
}

// Edge is one influence edge of a network view (see ForEachEdge).
type Edge struct {
	From, To int
	// Topics is the sparse topic-probability vector; empty for tombstones
	// left by edge deletions (see Engine.ApplyUpdates).
	Topics []TopicProb
}

// Live reports whether the edge can ever activate (false for tombstones).
func (e Edge) Live() bool { return len(e.Topics) > 0 }

// ForEachEdge calls fn for every edge in ID order, tombstones included,
// until fn returns false. The Topics slice is freshly allocated per call
// and may be retained.
func (n *Network) ForEachEdge(fn func(e Edge) bool) {
	for i := 0; i < n.g.NumEdges(); i++ {
		e := graph.EdgeID(i)
		ids, probs := n.g.EdgeTopics(e)
		tps := make([]TopicProb, len(ids))
		for j := range ids {
			tps[j] = TopicProb{Topic: int(ids[j]), Prob: probs[j]}
		}
		if !fn(Edge{From: int(n.g.EdgeFrom(e)), To: int(n.g.EdgeTo(e)), Topics: tps}) {
			return
		}
	}
}

// Write serializes the network in pitex's line-oriented text format.
func (n *Network) Write(w io.Writer) error { return graph.Write(w, n.g) }

// ReadNetwork parses a network previously written with Write.
func ReadNetwork(r io.Reader) (*Network, error) {
	g, err := graph.Read(r)
	if err != nil {
		return nil, err
	}
	return &Network{g: g}, nil
}

// ReadNetworkEdgeList imports a whitespace-separated edge list
// ("from to [topic:prob ...]" per line, '#' comments), the common format
// of public graph distributions. Unannotated edges get defaultProb on
// topic 0. Vertex IDs are compacted to [0, NumUsers) in first-appearance
// order; the returned map translates original IDs to engine user IDs.
func ReadNetworkEdgeList(r io.Reader, numTopics int, defaultProb float64) (*Network, map[int64]int, error) {
	g, raw, err := graph.ReadEdgeList(r, numTopics, defaultProb)
	if err != nil {
		return nil, nil, err
	}
	ids := make(map[int64]int, len(raw))
	for orig, v := range raw {
		ids[orig] = int(v)
	}
	return &Network{g: g}, ids, nil
}

// UsersByGroup partitions users with out-edges by out-degree into the
// paper's query populations: "high" (top 1%), "mid" (top 1-10%) and "low"
// (the rest).
func (n *Network) UsersByGroup() map[string][]int {
	out := map[string][]int{}
	for grp, vs := range graph.UserGroups(n.g) {
		users := make([]int, len(vs))
		for i, v := range vs {
			users[i] = int(v)
		}
		out[grp.String()] = users
	}
	return out
}

// NetworkBuilder accumulates edges and produces a Network.
type NetworkBuilder struct {
	b        *graph.Builder
	numUsers int
}

// NewNetworkBuilder creates a builder for a network with numUsers users and
// numTopics topics.
func NewNetworkBuilder(numUsers, numTopics int) *NetworkBuilder {
	return &NetworkBuilder{b: graph.NewBuilder(numUsers, numTopics), numUsers: numUsers}
}

// AddEdge appends a directed influence edge from -> to with the given
// topic-wise probabilities. Validation happens at Build.
func (nb *NetworkBuilder) AddEdge(from, to int, probs ...TopicProb) {
	tps := make([]graph.TopicProb, len(probs))
	for i, p := range probs {
		tps[i] = graph.TopicProb{Topic: int32(p.Topic), Prob: p.Prob}
	}
	nb.b.AddEdge(graph.VertexID(from), graph.VertexID(to), tps)
}

// Build validates the accumulated edges and returns the Network.
func (nb *NetworkBuilder) Build() (*Network, error) {
	g, err := nb.b.Build()
	if err != nil {
		return nil, fmt.Errorf("pitex: %w", err)
	}
	return &Network{g: g}, nil
}
