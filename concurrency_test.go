package pitex

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentClonesMatchSingleThreaded hammers one shared offline index
// from many goroutines and checks every answer against the single-threaded
// engine. IndexEst+ with cheap bounds is fully deterministic (no per-query
// randomness), so the comparison is exact. Run under -race this doubles as
// the shared-index safety proof for the serving pool.
func TestConcurrentClonesMatchSingleThreaded(t *testing.T) {
	spec, err := BaseDatasetSpec("lastfm")
	if err != nil {
		t.Fatal(err)
	}
	net, model, err := GenerateDatasetSpec(spec.Scaled(0.02), 1)
	if err != nil {
		t.Fatal(err)
	}
	en, err := NewEngine(net, model, Options{
		Strategy:        StrategyIndexPruned,
		Seed:            3,
		MaxSamples:      5000,
		MaxIndexSamples: 20000,
		CheapBounds:     true,
	})
	if err != nil {
		t.Fatal(err)
	}

	users := make([]int, 12)
	for i := range users {
		users[i] = (i * 7) % net.NumUsers()
	}
	const k = 2

	type answer struct {
		tags      []int
		influence float64
	}
	want := make(map[int]answer, len(users))
	for _, u := range users {
		res, err := en.Query(u, k)
		if err != nil {
			t.Fatalf("baseline Query(%d): %v", u, err)
		}
		want[u] = answer{tags: res.Tags, influence: res.Influence}
	}

	const workers = 16
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			clone := en.Clone()
			// Each worker visits every user, starting at a different
			// offset so distinct users are in flight simultaneously.
			for i := range users {
				u := users[(i+w)%len(users)]
				res, err := clone.Query(u, k)
				if err != nil {
					errs <- fmt.Errorf("worker %d Query(%d): %w", w, u, err)
					return
				}
				exp := want[u]
				if res.Influence != exp.influence || len(res.Tags) != len(exp.tags) {
					errs <- fmt.Errorf("worker %d user %d: got (%v, %v), want (%v, %v)",
						w, u, res.Tags, res.Influence, exp.tags, exp.influence)
					return
				}
				for j := range res.Tags {
					if res.Tags[j] != exp.tags[j] {
						errs <- fmt.Errorf("worker %d user %d: tags %v, want %v",
							w, u, res.Tags, exp.tags)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
