package pitex_test

// One testing.B benchmark per table and figure of the paper's evaluation
// (Sec. 7 and Appendix D), each wrapping the corresponding runner in
// internal/experiments at a CI-sized configuration, plus ablation
// benchmarks for the design choices called out in DESIGN.md Sec. 6.
//
// Benchmarks report b.N wall time per full experiment run; the interesting
// cross-method comparisons live inside the printed reports, regenerable
// with:  go run ./cmd/pitexbench -exp <id> [-full]

import (
	"context"
	"testing"

	"pitex"
	"pitex/analytics"

	"pitex/internal/datasets"
	"pitex/internal/experiments"
	"pitex/internal/graph"
	"pitex/internal/rng"
	"pitex/internal/rrindex"
	"pitex/internal/sampling"
	"pitex/internal/topics"
)

// benchConfig is the CI-sized experiment configuration shared by the
// table/figure benchmarks.
func benchConfig() experiments.Config {
	cfg := experiments.Quick()
	cfg.Scale = 0.03
	cfg.Datasets = []string{"lastfm", "diggs"}
	cfg.QueriesPerGroup = 1
	cfg.MaxSamples = 500
	cfg.MaxIndexSamples = 5000
	return cfg
}

func runExperiment(b *testing.B, runner experiments.Runner, cfg experiments.Config) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rep, err := runner(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Rows) == 0 {
			b.Fatal("empty report")
		}
	}
}

func BenchmarkTable2DatasetStats(b *testing.B) { runExperiment(b, experiments.Table2, benchConfig()) }
func BenchmarkTable3IndexConstruction(b *testing.B) {
	runExperiment(b, experiments.Table3, benchConfig())
}
func BenchmarkTable4CaseStudy(b *testing.B) { runExperiment(b, experiments.Table4, benchConfig()) }

func BenchmarkFig6SamplingConvergence(b *testing.B) {
	runExperiment(b, experiments.Fig6, benchConfig())
}

func BenchmarkFig7EfficiencyByGroup(b *testing.B) { runExperiment(b, experiments.Fig7, benchConfig()) }
func BenchmarkFig8SpreadByGroup(b *testing.B)     { runExperiment(b, experiments.Fig8, benchConfig()) }

func BenchmarkFig9VaryEpsilon(b *testing.B) {
	cfg := benchConfig()
	cfg.Datasets = []string{"lastfm"}
	runExperiment(b, experiments.Fig9, cfg)
}

func BenchmarkFig10SpreadVaryEpsilon(b *testing.B) {
	cfg := benchConfig()
	cfg.Datasets = []string{"lastfm"}
	runExperiment(b, experiments.Fig10, cfg)
}

func BenchmarkFig11VaryK(b *testing.B) {
	cfg := benchConfig()
	cfg.Datasets = []string{"lastfm"}
	runExperiment(b, experiments.Fig11, cfg)
}

func BenchmarkFig12Scalability(b *testing.B) {
	cfg := benchConfig()
	cfg.Scale = 0.01
	runExperiment(b, experiments.Fig12, cfg)
}

func BenchmarkFig13EdgeVisits(b *testing.B) { runExperiment(b, experiments.Fig13, benchConfig()) }

func BenchmarkFig14VaryDelta(b *testing.B) {
	cfg := benchConfig()
	cfg.Datasets = []string{"lastfm"}
	runExperiment(b, experiments.Fig14, cfg)
}

// --- Ablations (DESIGN.md Sec. 6) ---

// benchDataset builds one mid-sized internal dataset for the ablations.
func benchDataset(b *testing.B) *datasets.Dataset {
	b.Helper()
	spec := datasets.Specs()["diggs"]
	spec.V, spec.E = 2000, 26000
	d, err := datasets.BuildSpec(spec, 1)
	if err != nil {
		b.Fatal(err)
	}
	return d
}

func benchPosterior(b *testing.B, d *datasets.Dataset) []float64 {
	b.Helper()
	post := make([]float64, d.Model.NumTopics())
	for w := 0; w < d.Model.NumTags(); w++ {
		if d.Model.PosteriorInto([]topics.TagID{topics.TagID(w)}, post) {
			return post
		}
	}
	b.Fatal("no supported tag")
	return nil
}

// BenchmarkAblationLazyVsBernoulli compares lazy propagation sampling with
// plain Bernoulli MC at a fixed sample budget (the Sec. 5.1 claim).
func BenchmarkAblationLazyVsBernoulli(b *testing.B) {
	d := benchDataset(b)
	post := benchPosterior(b, d)
	u := graph.MaxOutDegreeVertex(d.Graph)
	so := sampling.Options{Epsilon: 0.7, Delta: 1000, LogSearchSpace: 10}
	b.Run("bernoulli-mc", func(b *testing.B) {
		mc := sampling.NewMC(d.Graph, so, rng.New(1))
		for i := 0; i < b.N; i++ {
			mc.EstimateWithBudget(u, post, 500)
		}
		b.ReportMetric(float64(mc.EdgeVisits())/float64(b.N), "edgevisits/op")
	})
	b.Run("lazy-geometric", func(b *testing.B) {
		lz := sampling.NewLazy(d.Graph, so, rng.New(1))
		for i := 0; i < b.N; i++ {
			lz.EstimateWithBudget(u, post, 500)
		}
		b.ReportMetric(float64(lz.EdgeVisits())/float64(b.N), "edgevisits/op")
	})
}

// BenchmarkAblationEarlyStop measures the Algo-2 stopping rule's effect on
// a full-budget estimation.
func BenchmarkAblationEarlyStop(b *testing.B) {
	d := benchDataset(b)
	post := benchPosterior(b, d)
	u := graph.MaxOutDegreeVertex(d.Graph)
	for _, stop := range []bool{true, false} {
		name := "with-early-stop"
		if !stop {
			name = "no-early-stop"
		}
		b.Run(name, func(b *testing.B) {
			so := sampling.Options{
				Epsilon: 0.7, Delta: 1000, LogSearchSpace: 10,
				MaxSamples: 20000, DisableEarlyStop: !stop,
			}
			lz := sampling.NewLazy(d.Graph, so, rng.New(1))
			var samples int64
			for i := 0; i < b.N; i++ {
				samples += lz.Estimate(u, post).Samples
			}
			b.ReportMetric(float64(samples)/float64(b.N), "samples/op")
		})
	}
}

// BenchmarkAblationCutChoice compares the paper's best-of-two cut policy
// against always taking the source-side cut (Sec. 6.2, Example 7).
func BenchmarkAblationCutChoice(b *testing.B) {
	d := benchDataset(b)
	post := benchPosterior(b, d)
	idx, err := rrindex.Build(d.Graph, rrindex.BuildOptions{
		Accuracy:        sampling.Options{Epsilon: 0.7, Delta: 1000, LogSearchSpace: 10},
		MaxIndexSamples: 20000,
		Seed:            1,
	})
	if err != nil {
		b.Fatal(err)
	}
	u := graph.MaxOutDegreeVertex(d.Graph)
	for _, policy := range []rrindex.CutPolicy{rrindex.CutBestOfTwo, rrindex.CutSourceOnly} {
		name := "best-of-two"
		if policy == rrindex.CutSourceOnly {
			name = "source-only"
		}
		b.Run(name, func(b *testing.B) {
			pe := rrindex.NewPrunedEstimator(idx)
			pe.Policy = policy
			for i := 0; i < b.N; i++ {
				pe.Estimate(u, post)
			}
			b.ReportMetric(float64(pe.GraphsChecked())/float64(b.N), "verified/op")
		})
	}
}

// BenchmarkAblationCutPruning compares IndexEst with IndexEst+ on the same
// index (the Sec. 6.2 claim).
func BenchmarkAblationCutPruning(b *testing.B) {
	d := benchDataset(b)
	post := benchPosterior(b, d)
	idx, err := rrindex.Build(d.Graph, rrindex.BuildOptions{
		Accuracy:        sampling.Options{Epsilon: 0.7, Delta: 1000, LogSearchSpace: 10},
		MaxIndexSamples: 20000,
		Seed:            1,
	})
	if err != nil {
		b.Fatal(err)
	}
	u := graph.MaxOutDegreeVertex(d.Graph)
	b.Run("indexest", func(b *testing.B) {
		est := rrindex.NewEstimator(idx)
		for i := 0; i < b.N; i++ {
			est.Estimate(u, post)
		}
	})
	b.Run("indexest+", func(b *testing.B) {
		pe := rrindex.NewPrunedEstimator(idx)
		for i := 0; i < b.N; i++ {
			pe.Estimate(u, post)
		}
	})
}

// BenchmarkAblationDenseEdgeVectors compares p(e|W) evaluation with sparse
// 2-entry edge vectors against dense |Z|-entry vectors.
func BenchmarkAblationDenseEdgeVectors(b *testing.B) {
	const Z = 50
	mkGraph := func(entries int) *graph.Graph {
		gb := graph.NewBuilder(2, Z)
		tps := make([]graph.TopicProb, entries)
		for i := range tps {
			tps[i] = graph.TopicProb{Topic: int32(i), Prob: 0.01}
		}
		gb.AddEdge(0, 1, tps)
		return gb.MustBuild()
	}
	post := make([]float64, Z)
	for z := range post {
		post[z] = 1.0 / Z
	}
	b.Run("sparse-2", func(b *testing.B) {
		g := mkGraph(2)
		for i := 0; i < b.N; i++ {
			_ = g.EdgeProb(0, post)
		}
	})
	b.Run("dense-50", func(b *testing.B) {
		g := mkGraph(Z)
		for i := 0; i < b.N; i++ {
			_ = g.EdgeProb(0, post)
		}
	})
}

// BenchmarkAblationCheapBounds compares sampled Lemma-8 bound estimation
// against one-BFS reachability bounds inside a full query.
func BenchmarkAblationCheapBounds(b *testing.B) {
	net, model, err := pitex.GenerateDatasetSpec(pitex.DatasetSpec{
		Name: "ablation", Users: 1000, Edges: 8000,
		Topics: 10, Tags: 30, TopicsPerEdge: 2, MaxProb: 0.4, Reciprocity: 0.2,
	}, 1)
	if err != nil {
		b.Fatal(err)
	}
	u := net.UsersByGroup()["mid"][0]
	for _, cheap := range []bool{false, true} {
		name := "sampled-bounds"
		if cheap {
			name = "cheap-bounds"
		}
		b.Run(name, func(b *testing.B) {
			en, err := pitex.NewEngine(net, model, pitex.Options{
				Epsilon: 0.7, Delta: 1000, MaxK: 5, Seed: 1,
				MaxSamples: 500, CheapBounds: cheap,
			})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				if _, err := en.Query(u, 3); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSweep measures the population-analytics workload: a cohort
// sweep (one query per user, reduced to a leaderboard) over the same
// mid-sized dataset BenchmarkQuerySingle uses, fanned over 4 workers.
// Rows land in BENCH_query.json next to the per-query numbers, so the
// whole-population path is tracked by the same regression gate.
func BenchmarkSweep(b *testing.B) {
	net, model, err := pitex.GenerateDatasetSpec(pitex.DatasetSpec{
		Name: "headline", Users: 1500, Edges: 15000,
		Topics: 20, Tags: 50, TopicsPerEdge: 2, MaxProb: 0.4, Reciprocity: 0.3,
	}, 1)
	if err != nil {
		b.Fatal(err)
	}
	cohort := make([]int, 64)
	for i := range cohort {
		cohort[i] = i
	}
	for _, s := range []pitex.Strategy{pitex.StrategyIndexPruned, pitex.StrategyDelay} {
		b.Run(s.String()+"-W4", func(b *testing.B) {
			en, err := pitex.NewEngine(net, model, pitex.Options{
				Strategy: s, Epsilon: 0.7, Delta: 1000, MaxK: 5, Seed: 1,
				MaxSamples: 500, MaxIndexSamples: 20000, CheapBounds: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lb, err := analytics.Run(context.Background(), en, analytics.Options{
					K: 3, TopN: 20, Workers: 4, ChunkSize: 16, Users: cohort,
				})
				if err != nil {
					b.Fatal(err)
				}
				if lb.UsersSwept != len(cohort) {
					b.Fatalf("swept %d users", lb.UsersSwept)
				}
			}
			b.ReportMetric(float64(len(cohort)), "users/op")
		})
	}
}

// BenchmarkQuerySingle is a headline per-query benchmark for each strategy
// on a mid-sized dataset.
func BenchmarkQuerySingle(b *testing.B) {
	net, model, err := pitex.GenerateDatasetSpec(pitex.DatasetSpec{
		Name: "headline", Users: 1500, Edges: 15000,
		Topics: 20, Tags: 50, TopicsPerEdge: 2, MaxProb: 0.4, Reciprocity: 0.3,
	}, 1)
	if err != nil {
		b.Fatal(err)
	}
	u := net.UsersByGroup()["mid"][0]
	for _, s := range []pitex.Strategy{
		pitex.StrategyLazy, pitex.StrategyMC, pitex.StrategyRR, pitex.StrategyTIM,
		pitex.StrategyIndex, pitex.StrategyIndexPruned, pitex.StrategyDelay,
	} {
		b.Run(s.String(), func(b *testing.B) {
			en, err := pitex.NewEngine(net, model, pitex.Options{
				Strategy: s, Epsilon: 0.7, Delta: 1000, MaxK: 5, Seed: 1,
				MaxSamples: 500, MaxIndexSamples: 20000, CheapBounds: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			// One untimed warm-up query: the benchmark measures the steady
			// state, not one-time lazy work (DelayMat's per-user Algo 4
			// recovery, scratch growth) that belongs to build cost.
			if _, err := en.Query(u, 3); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := en.Query(u, 3); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// Sharded variants (S=4) for the index strategies, so BENCH_query.json
	// tracks the scatter-gather layout's trajectory next to the monolithic
	// one.
	for _, s := range []pitex.Strategy{
		pitex.StrategyIndex, pitex.StrategyIndexPruned, pitex.StrategyDelay,
	} {
		b.Run(s.String()+"-S4", func(b *testing.B) {
			en, err := pitex.NewEngine(net, model, pitex.Options{
				Strategy: s, Epsilon: 0.7, Delta: 1000, MaxK: 5, Seed: 1,
				MaxSamples: 500, MaxIndexSamples: 20000, CheapBounds: true,
				IndexShards: 4,
			})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := en.Query(u, 3); err != nil { // untimed warm-up
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := en.Query(u, 3); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
